#include "discovery/fd_miner.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>

#include "common/thread_pool.h"
#include "relational/encoded_relation.h"

namespace semandaq::discovery {

namespace {

/// All size-k subsets of {0..n-1}, emitted in lexicographic order.
void ForEachSubset(size_t n, size_t k,
                   const std::function<void(const std::vector<size_t>&)>& fn) {
  std::vector<size_t> idx(k);
  for (size_t i = 0; i < k; ++i) idx[i] = i;
  if (k > n) return;
  while (true) {
    fn(idx);
    // Advance.
    size_t i = k;
    while (i > 0) {
      --i;
      if (idx[i] != i + n - k) {
        ++idx[i];
        for (size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return;
    }
    if (k == 0) return;
  }
}

}  // namespace

bool FdMiner::Holds(const relational::Relation& rel, const std::vector<size_t>& lhs,
                    size_t rhs) {
  const Partition px = Partition::Build(rel, lhs);
  std::vector<size_t> xa = lhs;
  xa.push_back(rhs);
  const Partition pxa = Partition::Build(rel, xa);
  return px.Refines(pxa);
}

std::vector<DiscoveredFd> FdMiner::Mine() {
  const size_t ncols = rel_->schema().size();
  std::vector<DiscoveredFd> found;
  // rhs -> list of minimal LHS sets found so far.
  std::map<size_t, std::vector<std::vector<size_t>>> minimal_lhs;

  // Base partitions come from the dictionary-encoded snapshot when enabled:
  // singletons then cost one dense code->class array pass each, with the
  // array sized directly from the dictionary cardinality.
  std::unique_ptr<relational::EncodedRelation> encoded;
  if (options_.use_encoded) {
    encoded = std::make_unique<relational::EncodedRelation>(rel_);
  }

  // Partition cache keyed by the sorted column list; products are built from
  // the prefix partition and the last singleton (classic TANE recurrence).
  std::map<std::vector<size_t>, Partition> cache;

  // Base-level fan-out: every singleton partition gets built by the sweep
  // anyway, and the builds are mutually independent (each reads one code
  // column of the shared snapshot, or one projection of the hydrated
  // relation), so a borrowed pool builds them concurrently up front. Class
  // ids are first-touch-ordered per partition, so the result is identical
  // to the lazy serial build; only the wall clock changes.
  if (options_.pool != nullptr && options_.pool->num_threads() > 1 &&
      ncols > 0) {
    rel_->EnsureHydrated();  // hydration is not thread-safe; pay it once
    std::vector<Partition> bases(ncols);
    options_.pool->Run(ncols, [&](size_t c) {
      bases[c] = encoded ? Partition::Build(*encoded, {c})
                         : Partition::Build(*rel_, {c});
    });
    for (size_t c = 0; c < ncols; ++c) {
      cache.emplace(std::vector<size_t>{c}, std::move(bases[c]));
    }
  }
  std::function<const Partition&(const std::vector<size_t>&)> partition_of =
      [&](const std::vector<size_t>& cols) -> const Partition& {
    auto it = cache.find(cols);
    if (it != cache.end()) return it->second;
    Partition p;
    if (cols.size() <= 1) {
      p = encoded ? Partition::Build(*encoded, cols)
                  : Partition::Build(*rel_, cols);
    } else {
      std::vector<size_t> prefix(cols.begin(), cols.end() - 1);
      const Partition& pa = partition_of(prefix);
      const Partition& pb = partition_of({cols.back()});
      p = Partition::Intersect(pa, pb);
    }
    return cache.emplace(cols, std::move(p)).first->second;
  };

  auto has_subset_fd = [&](const std::vector<size_t>& lhs, size_t rhs) {
    auto it = minimal_lhs.find(rhs);
    if (it == minimal_lhs.end()) return false;
    for (const auto& sub : it->second) {
      if (std::includes(lhs.begin(), lhs.end(), sub.begin(), sub.end())) return true;
    }
    return false;
  };

  for (size_t level = 1; level <= options_.max_lhs && level < ncols; ++level) {
    ForEachSubset(ncols, level, [&](const std::vector<size_t>& lhs) {
      const Partition& px = partition_of(lhs);
      for (size_t rhs = 0; rhs < ncols; ++rhs) {
        if (std::find(lhs.begin(), lhs.end(), rhs) != lhs.end()) continue;
        if (has_subset_fd(lhs, rhs)) continue;  // not minimal
        std::vector<size_t> xa = lhs;
        xa.push_back(rhs);
        std::sort(xa.begin(), xa.end());
        const Partition& pxa = partition_of(xa);
        if (px.Refines(pxa)) {
          found.push_back(DiscoveredFd{lhs, rhs});
          minimal_lhs[rhs].push_back(lhs);
        }
      }
    });
  }
  return found;
}

}  // namespace semandaq::discovery
