#ifndef SEMANDAQ_DISCOVERY_CFD_MINER_H_
#define SEMANDAQ_DISCOVERY_CFD_MINER_H_

#include <vector>

#include "cfd/cfd.h"
#include "common/cancel.h"
#include "common/simd/simd.h"
#include "common/status.h"
#include "relational/relation.h"

namespace semandaq::common {
class ThreadPool;
}  // namespace semandaq::common

namespace semandaq::discovery {

struct CfdMinerOptions {
  /// Maximum LHS size explored.
  size_t max_lhs = 3;
  /// Minimum number of tuples a pattern must cover to be emitted (the
  /// support threshold of CTANE-style discovery; filters coincidences).
  size_t min_support = 3;
  /// Mine variable CFDs ([C=c, rest=_] -> [A=_]).
  bool mine_variable = true;
  /// Mine constant CFDs ([X=x] -> [A=a]).
  bool mine_constant = true;
  /// Also emit plain FDs (all-wildcard tableau rows) that hold globally.
  bool include_global_fds = true;
  /// Cap on tableau rows per embedded FD (keeps Σ reviewable).
  size_t max_patterns_per_fd = 64;
  /// Run the partition and evidence passes over a dictionary-encoded
  /// snapshot (integer codes) instead of hashing Rows and Values.
  bool use_encoded = true;
  /// Lanes for the per-level candidate fan-out (and the embedded FdMiner
  /// run): 1 = serial sweep (the default), 0 = one lane per hardware
  /// thread, N = N lanes. Without a borrowed `pool`, the miner spins up
  /// its own pool for the Mine() call. Mined output is byte-identical for
  /// every thread count — see FdMinerOptions::num_threads.
  size_t num_threads = 1;
  /// Borrowed worker pool (e.g. the Semandaq facade's, shared with the
  /// embedded FdMiner run). When attached with more than one lane it
  /// powers the base-partition builds and the candidate fan-out,
  /// overriding `num_threads`. Mined output is identical to serial.
  common::ThreadPool* pool = nullptr;
  /// Kernel tier for partition builds, intersects, and the constant/
  /// variable evidence scans (kAuto = the host's best). Every tier mines
  /// the identical output.
  common::simd::Level simd_level = common::simd::Level::kAuto;
  /// Cooperative cancellation (common/cancel.h), checked at level and
  /// candidate boundaries (shared with the embedded FdMiner run). A
  /// tripped token turns Mine() into Status::Cancelled /
  /// Status::DeadlineExceeded; the miner writes nothing but its local
  /// output, so nothing is published. nullptr = not cancellable.
  common::CancelToken* cancel = nullptr;
};

/// CTANE-style CFD discovery from reference data (paper §2, Constraint
/// Engine: constraints "may either be explicitly specified by users or
/// automatically discovered from reference data").
///
/// Levelwise over the attribute lattice (partitions shared with FdMiner):
///  * a global FD X -> A becomes an all-wildcard CFD;
///  * a class of Π_X with support >= k on which A is constant becomes a
///    constant CFD ([X=x] -> [A=a]), pruned when an immediate-subset class
///    already implies the same constant (left-reduction);
///  * when X -> A fails globally, each conditioning attribute C in X whose
///    value c restricts the data so that X -> A holds on σ_{C=c} with
///    support >= k yields a variable CFD ([C=c, X\C=_] -> [A=_]).
///
/// Every emitted CFD holds on the mined instance by construction (the test
/// suite re-verifies with the detector).
///
/// Like the FD miner, the sweep fans each level's candidate LHS sets out
/// over a thread pool (one task per candidate, per-candidate result slots,
/// serial lexicographic emission) and the evidence scans run on the
/// common::simd kernel tier — output is byte-identical across thread
/// counts and tiers (tests/parallel_discovery_test).
class CfdMiner {
 public:
  explicit CfdMiner(const relational::Relation* rel, CfdMinerOptions options = {})
      : rel_(rel), options_(options) {}

  common::Result<std::vector<cfd::Cfd>> Mine();

 private:
  const relational::Relation* rel_;
  CfdMinerOptions options_;
};

}  // namespace semandaq::discovery

#endif  // SEMANDAQ_DISCOVERY_CFD_MINER_H_
