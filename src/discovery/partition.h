#ifndef SEMANDAQ_DISCOVERY_PARTITION_H_
#define SEMANDAQ_DISCOVERY_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/simd/simd.h"
#include "relational/encoded_relation.h"
#include "relational/relation.h"

namespace semandaq::discovery {

/// The equivalence-class partition Π_X of a relation's live tuples under
/// equality on an attribute set X — the workhorse of TANE-family dependency
/// discovery. Tuples with NULL in any X attribute are excluded (NULLs
/// cannot witness equality, matching the detector's semantics).
class Partition {
 public:
  /// Builds Π_X by hashing the X projection of every live tuple.
  static Partition Build(const relational::Relation& rel,
                         const std::vector<size_t>& cols);

  /// Builds Π_X from a dictionary-encoded snapshot: a counting/group pass
  /// over code columns instead of hashing projected Rows. Single attributes
  /// index a dense code->class array sized by the dictionary cardinality
  /// (no hash table at all); wider sets group on packed code keys. Class
  /// ids are assigned in first-touch (tuple id) order, so the result is
  /// structurally identical to the row-hash Build.
  ///
  /// The liveness + non-NULL filter and the two-column key packing run on
  /// the common::simd kernel tier `level` (kAuto = the host's best; see
  /// docs/simd.md) — every tier builds the identical partition; the knob
  /// exists for A/B benches and the scalar-floor equivalence tests.
  static Partition Build(const relational::EncodedRelation& enc,
                         const std::vector<size_t>& cols,
                         common::simd::Level level = common::simd::Level::kAuto);

  /// Product partition Π_{X ∪ Y} = Π_X · Π_Y from the class ids of both.
  static Partition Intersect(const Partition& a, const Partition& b);

  /// Number of classes (singletons included).
  size_t num_classes() const { return num_classes_; }

  /// Tuples covered (live tuples without NULL in X).
  size_t num_tuples() const { return covered_; }

  /// Class id for a tuple, or -1 when the tuple is not covered.
  int32_t ClassOf(relational::TupleId tid) const {
    const auto i = static_cast<size_t>(tid);
    return i < class_of_.size() ? class_of_[i] : -1;
  }

  /// Members of every class of size >= 2, in class-id order. Singleton
  /// classes are counted but not materialized ("stripped" representation).
  const std::vector<std::vector<relational::TupleId>>& classes() const {
    return classes_;
  }

  /// True when this partition refines `other`: every class of this is
  /// contained in one class of `other` (restricted to commonly covered
  /// tuples). Π_X refines Π_{X∪A}  <=>  FD X -> A holds.
  bool Refines(const Partition& other) const;

 private:
  std::vector<int32_t> class_of_;  // indexed by tuple id; -1 = not covered
  std::vector<std::vector<relational::TupleId>> classes_;  // size >= 2 only
  size_t num_classes_ = 0;
  size_t covered_ = 0;
};

}  // namespace semandaq::discovery

#endif  // SEMANDAQ_DISCOVERY_PARTITION_H_
