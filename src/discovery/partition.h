#ifndef SEMANDAQ_DISCOVERY_PARTITION_H_
#define SEMANDAQ_DISCOVERY_PARTITION_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "common/simd/simd.h"
#include "relational/encoded_relation.h"
#include "relational/relation.h"

namespace semandaq::common {
class ThreadPool;
}  // namespace semandaq::common

namespace semandaq::discovery {

/// The equivalence-class partition Π_X of a relation's live tuples under
/// equality on an attribute set X — the workhorse of TANE-family dependency
/// discovery. Tuples with NULL in any X attribute are excluded (NULLs
/// cannot witness equality, matching the detector's semantics).
class Partition {
 public:
  /// Builds Π_X by hashing the X projection of every live tuple.
  static Partition Build(const relational::Relation& rel,
                         const std::vector<size_t>& cols);

  /// Builds Π_X from a dictionary-encoded snapshot: a counting/group pass
  /// over code columns instead of hashing projected Rows. Single attributes
  /// index a dense code->class array sized by the dictionary cardinality
  /// (no hash table at all); wider sets group on packed code keys. Class
  /// ids are assigned in first-touch (tuple id) order, so the result is
  /// structurally identical to the row-hash Build.
  ///
  /// The liveness + non-NULL filter and the two-column key packing run on
  /// the common::simd kernel tier `level` (kAuto = the host's best; see
  /// docs/simd.md) — every tier builds the identical partition; the knob
  /// exists for A/B benches and the scalar-floor equivalence tests.
  static Partition Build(const relational::EncodedRelation& enc,
                         const std::vector<size_t>& cols,
                         common::simd::Level level = common::simd::Level::kAuto);

  /// Product partition Π_{X ∪ Y} = Π_X · Π_Y from the class ids of both.
  /// The probe loop runs in kernel blocks on tier `level`: MaskNeAnd32
  /// filters the not-covered sentinel out of both class-id columns and
  /// PackKeys2x32 pre-packs the (class_a, class_b) group keys; every tier
  /// produces the identical partition (first-touch class ids over the same
  /// bit order).
  static Partition Intersect(const Partition& a, const Partition& b,
                             common::simd::Level level =
                                 common::simd::Level::kAuto);

  /// Number of classes (singletons included).
  size_t num_classes() const { return num_classes_; }

  /// Tuples covered (live tuples without NULL in X).
  size_t num_tuples() const { return covered_; }

  /// The stripped-partition error measure e(X) = |covered| - |Π_X|: how
  /// many tuples sit on top of another tuple of their class (0 when X is a
  /// key over the covered tuples). This is the TANE validation measure:
  /// when Π_X and Π_{X∪A} cover the same tuples, X -> A holds iff
  /// e(X) == e(X∪A) — see RefinesForFd below.
  size_t Error() const { return covered_ - num_classes_; }

  /// Class id for a tuple, or -1 when the tuple is not covered.
  int32_t ClassOf(relational::TupleId tid) const {
    const auto i = static_cast<size_t>(tid);
    return i < class_of_.size() ? class_of_[i] : -1;
  }

  /// Members of every class of size >= 2, in class-id order. Singleton
  /// classes are counted but not materialized ("stripped" representation).
  const std::vector<std::vector<relational::TupleId>>& classes() const {
    return classes_;
  }

  /// True when this partition refines `other`: every class of this is
  /// contained in one class of `other` (restricted to commonly covered
  /// tuples). Π_X refines Π_{X∪A}  <=>  FD X -> A holds.
  bool Refines(const Partition& other) const;

 private:
  std::vector<int32_t> class_of_;  // indexed by tuple id; -1 = not covered
  std::vector<std::vector<relational::TupleId>> classes_;  // size >= 2 only
  size_t num_classes_ = 0;
  size_t covered_ = 0;
};

/// The FD validation test X -> A given px = Π_X and pxa = Π_{X∪A}.
///
/// Fast path: Π_{X∪A} always refines Π_X on the tuples both cover, and
/// cover(X∪A) ⊆ cover(X) (adding A can only exclude more NULL tuples), so
/// when the cover *counts* match the covers are equal and px.Refines(pxa)
/// collapses to partition equality — decided by the classic TANE error
/// test e(X) == e(X∪A) in O(1) instead of walking every class. When A's
/// NULLs shrink pxa's cover, fall back to the class walk.
inline bool RefinesForFd(const Partition& px, const Partition& pxa) {
  if (px.num_tuples() == pxa.num_tuples()) return px.Error() == pxa.Error();
  return px.Refines(pxa);
}

/// Level-scoped partition memory for the levelwise lattice sweep.
///
/// The miners' old per-Mine() std::map cache retained every partition ever
/// built — O(Σ_k C(ncols, k)) resident partitions over a full sweep. The
/// sweep only ever reads three slices, though: the pinned single-attribute
/// bases (the Intersect recurrence always ends in one), the previous
/// lattice level's products, and the products being built for the next
/// level. PartitionCache keeps exactly those: bases forever, plus two
/// rotating generations. Rotate() seals the current generation and drops
/// the older one between levels, so peak residency is bounded to two
/// lattice levels regardless of sweep depth. A Get() for an evicted set is
/// rebuilt on demand from the bases (never served stale) into the current
/// generation.
///
/// Get() is thread-safe — the per-level candidate fan-out calls it from
/// pool lanes concurrently. Builds run outside the lock, and an
/// in-flight set deduplicates them: same-level candidates request the
/// same products (every (k+1)-set is wanted by k+1 candidates), so a
/// lane that finds its set under construction waits for the builder
/// instead of redoing the dominant Intersect work. Waits cannot cycle —
/// a build only ever waits on strict subsets of its own set. A returned
/// reference is only guaranteed until the next Rotate(): an entry served
/// from the previous generation dies right there (Rotate destroys that
/// map), so hold references within one level only. Base references live
/// as long as the cache (std::map nodes are address-stable). Rotate()
/// itself must not race with Get() — call it between levels, after the
/// fan-out joined.
class PartitionCache {
 public:
  /// Both pointers are borrowed. `enc` selects the encoded build path and
  /// may be null (row-hash fallback); `level` is the kernel tier every
  /// build and intersect runs on.
  PartitionCache(const relational::Relation* rel,
                 const relational::EncodedRelation* enc,
                 common::simd::Level level = common::simd::Level::kAuto)
      : rel_(rel), enc_(enc), level_(level) {}

  PartitionCache(const PartitionCache&) = delete;
  PartitionCache& operator=(const PartitionCache&) = delete;

  /// The partition for the sorted attribute set `cols`, built (and cached
  /// in the current generation) if absent. Thread-safe.
  const Partition& Get(const std::vector<size_t>& cols);

  /// Builds all `ncols` single-attribute base partitions up front, fanned
  /// out over `pool` when it has lanes to spare (they are mutually
  /// independent; class ids are first-touch-ordered per partition, so the
  /// result is identical to the lazy serial build). Call once before a
  /// parallel sweep; harmless to skip (bases then build lazily).
  void BuildBases(size_t ncols, common::ThreadPool* pool);

  /// Seals the current generation and evicts the previous one. Call
  /// between lattice levels; not thread-safe against Get().
  void Rotate();

  /// Resident non-base partitions (both generations) — what the eviction
  /// tests bound.
  size_t resident() const { return prev_.size() + cur_.size(); }

  /// Resident pinned base partitions.
  size_t resident_bases() const { return bases_.size(); }

  /// Total non-base builds so far (each Intersect counts once). An evicted
  /// set re-requested later increments this again — the rebuild-on-demand
  /// path the eviction tests assert.
  size_t builds() const { return builds_; }

 private:
  const relational::Relation* rel_;
  const relational::EncodedRelation* enc_;  // null = row-hash builds
  common::simd::Level level_;

  std::mutex mu_;
  std::condition_variable built_cv_;                  // in-flight completions
  std::map<size_t, Partition> bases_;                 // pinned singletons
  std::map<std::vector<size_t>, Partition> prev_;     // sealed level k-1
  std::map<std::vector<size_t>, Partition> cur_;      // level k, filling
  std::set<std::vector<size_t>> building_;            // claimed, not yet done
  std::set<size_t> building_bases_;
  size_t builds_ = 0;
};

}  // namespace semandaq::discovery

#endif  // SEMANDAQ_DISCOVERY_PARTITION_H_
