#!/usr/bin/env python3
"""Fails when a markdown file contains a broken relative link.

Usage: tools/check_links.py FILE_OR_DIR [FILE_OR_DIR ...]

Checks every [text](target) and [text](target#fragment) in the given
markdown files (directories are scanned for *.md). External schemes
(http/https/mailto) and pure in-page anchors (#...) are skipped; anything
else must resolve, relative to the containing file, to an existing file or
directory. Run by CI after the docs were touched; runnable locally with no
arguments beyond the paths.
"""

import os
import re
import sys

# [text](target) with no nested parens in the target; images share the form.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def collect(paths):
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, files in os.walk(path):
                for name in sorted(files):
                    if name.endswith(".md"):
                        yield os.path.join(root, name)
        else:
            yield path


def check_file(md_path):
    broken = []
    in_fence = False
    with open(md_path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:  # code blocks may show link *syntax*; not rendered
                continue
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                    continue
                rel = target.split("#", 1)[0]
                if not rel:
                    continue
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(md_path), rel))
                if not os.path.exists(resolved):
                    broken.append((lineno, target, resolved))
    return broken


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    checked = 0
    for md_path in collect(argv[1:]):
        checked += 1
        for lineno, target, resolved in check_file(md_path):
            print(f"{md_path}:{lineno}: broken link '{target}' "
                  f"(resolved to {resolved})")
            failures += 1
    print(f"checked {checked} markdown file(s), {failures} broken link(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
