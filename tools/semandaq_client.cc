// semandaq_client: command-line client for semandaq_server.
//
//   semandaq_client [--host=ADDR] [--port=N] [--retries=N] [--timeout-ms=N]
//                   [--deadline-ms=N] [COMMAND...]
//
// With COMMAND arguments, joins them into one command line, executes it,
// prints the response, and exits. Without arguments, reads commands from
// stdin one per line over a single connection — a pipe-friendly REPL, so a
// clean/diff/apply sequence shares one server session.
//
//   --retries     reconnect-and-retry attempts (exponential backoff +
//                 jitter) when the server is unreachable, drops the
//                 connection, or sheds load with a busy frame. Only
//                 one-shot COMMAND mode retries the command itself (it
//                 must be idempotent — rerunning `detect` or `save` is
//                 safe; a REPL session's clean/diff/apply is not).
//   --timeout-ms  per-command transport deadline, enforced client-side
//                 (0 = wait as long as it takes)
//   --deadline-ms server-side deadline carried in the request frame: the
//                 server cancels the command once it expires and answers
//                 with a deadline-exceeded status, leaving state untouched
//                 (0 = none; see docs/robustness.md)
//
// Exit codes: 0 success, 1 server-side command error, 2 usage error,
// 3 transport failure (server unreachable/dead after all retries),
// 4 command timed out (client-side transport deadline, or the server
// reported the request cancelled / past its deadline).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "common/string_util.h"
#include "server/client.h"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitCommandError = 1;
constexpr int kExitUsage = 2;
constexpr int kExitTransport = 3;
constexpr int kExitTimeout = 4;

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: semandaq_client [--host=ADDR] [--port=N] [--retries=N]"
               " [--timeout-ms=N] [--deadline-ms=N] [COMMAND...]\n");
  return kExitUsage;
}

/// Maps a transport-level failure to a clear message + exit code: the
/// operator learns whether the server is gone or just slow, not a raw
/// status dump.
int ReportTransportFailure(const semandaq::common::Status& status,
                           const std::string& host, uint16_t port,
                           int retries) {
  if (status.code() == semandaq::common::StatusCode::kDeadlineExceeded) {
    std::fprintf(stderr,
                 "semandaq_client: command timed out (%s)\n", status.message().c_str());
    return kExitTimeout;
  }
  std::fprintf(stderr,
               "semandaq_client: cannot reach semandaq_server at %s:%u%s\n"
               "  (%s)\n"
               "  Is the server running? Start one with: semandaq_server"
               " --port=%u\n",
               host.c_str(), static_cast<unsigned>(port),
               retries > 0 ? " after retries with backoff" : "",
               status.ToString().c_str(), static_cast<unsigned>(port));
  return kExitTransport;
}

/// Executes one command; prints the response. Returns the exit code the
/// command would produce (the REPL keeps going either way).
int RunOne(semandaq::server::Client& client, const std::string& command,
           const std::string& host, uint16_t port, int retries,
           bool idempotent, uint32_t deadline_ms) {
  auto response = deadline_ms > 0
                      ? client.CallWithDeadline(command, deadline_ms)
                      : (idempotent ? client.CallIdempotent(command)
                                    : client.Call(command));
  if (!response.ok()) {
    return ReportTransportFailure(response.status(), host, port, retries);
  }
  std::FILE* out = response->ok ? stdout : stderr;
  std::fprintf(out, "%s", response->text.c_str());
  std::fflush(out);
  if (response->ok) return kExitOk;
  // The status byte says WHY the command failed: server-side cancellation
  // and expired deadlines are timeouts, not command errors — the command
  // itself may be perfectly valid under a longer budget.
  switch (response->status) {
    case semandaq::server::WireStatus::kCancelled:
    case semandaq::server::WireStatus::kDeadlineExceeded:
      return kExitTimeout;
    default:
      return kExitCommandError;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 7744;
  semandaq::server::ClientOptions options;
  uint32_t deadline_ms = 0;
  std::string command;

  int i = 1;
  for (; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--host", &value)) {
      host = value;
    } else if (ParseFlag(argv[i], "--port", &value)) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(value.c_str(), &end, 10);
      if (value.empty() || end == nullptr || *end != '\0' || v > 65535) {
        return Usage();
      }
      port = static_cast<uint16_t>(v);
    } else if (ParseFlag(argv[i], "--retries", &value)) {
      char* end = nullptr;
      const long v = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || end == nullptr || *end != '\0' || v < 0) {
        return Usage();
      }
      options.max_retries = static_cast<int>(v);
    } else if (ParseFlag(argv[i], "--timeout-ms", &value)) {
      char* end = nullptr;
      const long v = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || end == nullptr || *end != '\0' || v < 0) {
        return Usage();
      }
      options.call_deadline_ms = static_cast<int>(v);
    } else if (ParseFlag(argv[i], "--deadline-ms", &value)) {
      char* end = nullptr;
      const long v = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || end == nullptr || *end != '\0' || v < 0) {
        return Usage();
      }
      deadline_ms = static_cast<uint32_t>(v);
    } else {
      break;  // first non-flag argument starts the command
    }
  }
  for (; i < argc; ++i) {
    if (!command.empty()) command += ' ';
    command += argv[i];
  }

  auto connected = semandaq::server::Client::Connect(host, port, options);
  if (!connected.ok()) {
    // Connect-time retries: same backoff discipline as CallIdempotent,
    // useful when racing a server that is still booting.
    semandaq::common::Rng rng(0xC1EA4u);
    int64_t delay = options.backoff_initial_ms;
    for (int attempt = 0; attempt < options.max_retries && !connected.ok();
         ++attempt) {
      std::fprintf(stderr,
                   "semandaq_client: connect failed, retrying in ~%lld ms"
                   " (%d/%d)\n",
                   static_cast<long long>(delay), attempt + 1,
                   options.max_retries);
      const int64_t jittered = delay / 2 + rng.NextInRange(0, delay / 2);
      std::this_thread::sleep_for(std::chrono::milliseconds(jittered));
      if (delay < options.backoff_max_ms) delay *= 2;
      connected = semandaq::server::Client::Connect(host, port, options);
    }
  }
  if (!connected.ok()) {
    return ReportTransportFailure(connected.status(), host, port,
                                  options.max_retries);
  }
  semandaq::server::Client client = std::move(*connected);

  if (!command.empty()) {
    // One-shot commands are safe to retry end-to-end (the caller chose the
    // command; --retries=0, the default, disables it anyway).
    return RunOne(client, command, host, port, options.max_retries,
                  /*idempotent=*/options.max_retries > 0, deadline_ms);
  }

  // REPL mode: one command per stdin line; blank lines are skipped.
  // `shutdown` stops the server, which then closes this connection.
  // Commands are never auto-retried here — a reconnect would silently
  // discard the server-side session (pending clean/diff/apply state).
  int exit_code = kExitOk;
  std::string line;
  while (std::getline(std::cin, line)) {
    const std::string trimmed = std::string(semandaq::common::Trim(line));
    if (trimmed.empty()) continue;
    const int rc = RunOne(client, trimmed, host, port, 0,
                          /*idempotent=*/false, deadline_ms);
    if (rc != kExitOk) exit_code = rc;
    if (rc == kExitTransport || rc == kExitTimeout) break;  // connection dead
    if (semandaq::common::EqualsIgnoreCase(trimmed, "shutdown")) break;
  }
  return exit_code;
}
