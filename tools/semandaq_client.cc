// semandaq_client: command-line client for semandaq_server.
//
//   semandaq_client [--host=ADDR] [--port=N] [COMMAND...]
//
// With COMMAND arguments, joins them into one command line, executes it,
// prints the response, and exits (0 on success, 1 on a server error or
// transport failure). Without arguments, reads commands from stdin one
// per line over a single connection — a pipe-friendly REPL, so a
// clean/diff/apply sequence shares one server session.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/string_util.h"
#include "server/client.h"

namespace {

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

/// Executes one command; returns false on a server error or transport
/// failure (the caller decides whether to keep the REPL going).
bool RunOne(semandaq::server::Client& client, const std::string& command) {
  auto response = client.Call(command);
  if (!response.ok()) {
    std::fprintf(stderr, "semandaq_client: %s\n",
                 response.status().ToString().c_str());
    return false;
  }
  std::FILE* out = response->ok ? stdout : stderr;
  std::fprintf(out, "%s", response->text.c_str());
  std::fflush(out);
  return response->ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 7744;
  std::string command;

  int i = 1;
  for (; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--host", &value)) {
      host = value;
    } else if (ParseFlag(argv[i], "--port", &value)) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(value.c_str(), &end, 10);
      if (value.empty() || end == nullptr || *end != '\0' || v > 65535) {
        std::fprintf(stderr,
                     "usage: semandaq_client [--host=ADDR] [--port=N]"
                     " [COMMAND...]\n");
        return 2;
      }
      port = static_cast<uint16_t>(v);
    } else {
      break;  // first non-flag argument starts the command
    }
  }
  for (; i < argc; ++i) {
    if (!command.empty()) command += ' ';
    command += argv[i];
  }

  auto connected = semandaq::server::Client::Connect(host, port);
  if (!connected.ok()) {
    std::fprintf(stderr, "semandaq_client: %s\n",
                 connected.status().ToString().c_str());
    return 1;
  }
  semandaq::server::Client client = std::move(*connected);

  if (!command.empty()) return RunOne(client, command) ? 0 : 1;

  // REPL mode: one command per stdin line; blank lines are skipped.
  // `shutdown` stops the server, which then closes this connection.
  bool all_ok = true;
  std::string line;
  while (std::getline(std::cin, line)) {
    const std::string trimmed = std::string(semandaq::common::Trim(line));
    if (trimmed.empty()) continue;
    if (!RunOne(client, trimmed)) all_ok = false;
    if (semandaq::common::EqualsIgnoreCase(trimmed, "shutdown")) break;
  }
  return all_ok ? 0 : 1;
}
