#!/usr/bin/env python3
"""Records the scalar-vs-vector SIMD kernel ratios in the bench artifact.

Usage: bench_simd_ratio.py [--semandaq-build-type=TYPE] \\
           BENCH_detect.json [BENCH_partition_simd.json]

--semandaq-build-type stamps the semandaq library's CMAKE_BUILD_TYPE into
the artifact context as "semandaq_build_type". The benchmark-emitted
"library_build_type" field describes how *libbenchmark itself* was
compiled (the Debian/Ubuntu package ships without NDEBUG, so it reports
"debug" no matter how this repo is configured); the explicit stamp records
the build type that actually governs the measured code.

Reads the BM_NativeDetectSimd A/B runs (second benchmark arg = requested
kernel tier; the "simd_level" counter is the tier that actually ran after
host clamping), computes time(scalar) / time(best vector tier) per tuple
count, and writes them back into BENCH_detect.json under "simd_ratios".
When the partition JSON is given, its BM_PartitionBuildSimd runs are merged
into the detect artifact (one file carries the whole record) and their
ratios are included. Exits nonzero only on malformed input — shared CI
runners are too noisy for a hard perf gate; the acceptance ratio is judged
from the recorded artifact.
"""

import json
import sys


def ratios(benchmarks, prefix):
    """{group -> scalar_time / best_vector_time} for one A/B family."""
    runs = {}
    for b in benchmarks:
        name = b.get("name", "")
        if b.get("run_type") == "aggregate" or not name.startswith(prefix + "/"):
            continue
        parts = name.split("/")
        if len(parts) < 3:
            continue
        group, level = "/".join(parts[1:-1]), b.get("simd_level")
        runs.setdefault(group, {})[level] = b["real_time"]
    out = {}
    for group, by_level in runs.items():
        scalar = by_level.get(0)
        vector_levels = {l: t for l, t in by_level.items() if l and l > 0}
        if not scalar or not vector_levels:
            continue
        best_level = max(vector_levels)  # highest tier that actually ran
        out[group] = {
            "scalar_ms": scalar,
            "vector_ms": vector_levels[best_level],
            "vector_level": best_level,
            "scalar_over_vector": round(scalar / vector_levels[best_level], 3),
        }
    return out


def main(argv):
    build_type = None
    args = []
    for a in argv[1:]:
        if a.startswith("--semandaq-build-type="):
            build_type = a.split("=", 1)[1]
        else:
            args.append(a)
    if not args:
        print(__doc__, file=sys.stderr)
        return 2
    detect_path = args[0]
    with open(detect_path) as f:
        detect = json.load(f)
    if build_type:
        detect.setdefault("context", {})["semandaq_build_type"] = \
            build_type.lower()

    if len(args) > 1:
        with open(args[1]) as f:
            partition = json.load(f)
        detect.setdefault("benchmarks", []).extend(
            partition.get("benchmarks", []))

    detect["simd_ratios"] = {
        "BM_NativeDetectSimd": ratios(detect.get("benchmarks", []),
                                      "BM_NativeDetectSimd"),
        "BM_PartitionBuildSimd": ratios(detect.get("benchmarks", []),
                                        "BM_PartitionBuildSimd"),
    }
    with open(detect_path, "w") as f:
        json.dump(detect, f, indent=1)
    for family, groups in detect["simd_ratios"].items():
        for group, r in sorted(groups.items()):
            print(f"{family}/{group}: scalar {r['scalar_ms']:.3f} ms, "
                  f"vector(level {r['vector_level']}) {r['vector_ms']:.3f} ms "
                  f"-> {r['scalar_over_vector']}x")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
