// semandaq_server: the TCP front end over one SemandaqService.
//
//   semandaq_server [--host=ADDR] [--port=N] [--lanes=N] [--db=DIR]
//                   [--sync=MODE] [--max-conns=N] [--read-deadline-ms=N]
//                   [--write-deadline-ms=N] [--drain-deadline-ms=N]
//                   [--default-deadline-ms=N] [--admission=on|off]
//                   [--max-expensive=N]
//
//   --host   listen address (default 127.0.0.1; trusted networks only)
//   --port   listen port (default 7744; 0 picks an ephemeral port)
//   --lanes  worker-lane budget shared by all requests (0 = hardware)
//   --db     database directory: opened at boot when a catalog manifest
//            exists, saved back on clean shutdown (warm restart)
//   --sync   default WAL durability for save/savedb: always (default;
//            fdatasync every record), batch(N), or none — see
//            docs/robustness.md
//   --max-conns          connection cap; extra connections are shed with
//                        a clean busy frame (0 = uncapped, the default)
//   --read-deadline-ms   per-frame read/idle deadline; a client silent
//                        this long is disconnected (0 = wait forever)
//   --write-deadline-ms  per-frame write deadline; a client not draining
//                        responses this long is disconnected (0 = forever)
//   --drain-deadline-ms  graceful-shutdown budget for in-flight commands
//                        (default 2000)
//   --default-deadline-ms  per-request deadline applied when the client
//                        sends none; an expired request is cancelled at
//                        its next engine checkpoint (0 = none)
//   --admission          cost-aware admission control (docs/robustness.md):
//                        cheap and expensive verbs get separate concurrency
//                        caps and bounded queues; overflow is shed with a
//                        busy frame carrying a retry hint (default off)
//   --max-expensive      concurrent expensive requests when admission is
//                        on (0 = half the lane budget)
//
// Prints "semandaq_server listening on HOST:PORT" once ready, then blocks
// until a client sends `shutdown`. See docs/server.md.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/status.h"
#include "server/service.h"
#include "server/tcp_server.h"
#include "storage/catalog.h"
#include "storage/wal.h"

namespace {

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

bool ParseSize(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: semandaq_server [--host=ADDR] [--port=N] [--lanes=N]"
               " [--db=DIR] [--sync=always|batch(N)|none] [--max-conns=N]"
               " [--read-deadline-ms=N] [--write-deadline-ms=N]"
               " [--drain-deadline-ms=N] [--default-deadline-ms=N]"
               " [--admission=on|off] [--max-expensive=N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  semandaq::server::TcpServerOptions tcp_options;
  tcp_options.port = 7744;
  semandaq::server::ServiceOptions service_options;
  std::string db_dir;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    uint64_t n = 0;
    if (ParseFlag(argv[i], "--host", &value)) {
      tcp_options.host = value;
    } else if (ParseFlag(argv[i], "--port", &value)) {
      if (!ParseSize(value, &n) || n > 65535) return Usage();
      tcp_options.port = static_cast<uint16_t>(n);
    } else if (ParseFlag(argv[i], "--lanes", &value)) {
      if (!ParseSize(value, &n)) return Usage();
      service_options.scheduler_lanes = static_cast<size_t>(n);
    } else if (ParseFlag(argv[i], "--db", &value)) {
      db_dir = value;
    } else if (ParseFlag(argv[i], "--sync", &value)) {
      auto policy = semandaq::storage::SyncPolicy::Parse(value);
      if (!policy.ok()) {
        std::fprintf(stderr, "semandaq_server: %s\n",
                     policy.status().ToString().c_str());
        return Usage();
      }
      service_options.wal_sync = *policy;
    } else if (ParseFlag(argv[i], "--max-conns", &value)) {
      if (!ParseSize(value, &n)) return Usage();
      tcp_options.max_connections = static_cast<size_t>(n);
    } else if (ParseFlag(argv[i], "--read-deadline-ms", &value)) {
      if (!ParseSize(value, &n) || n > INT32_MAX) return Usage();
      tcp_options.read_deadline_ms = static_cast<int>(n);
    } else if (ParseFlag(argv[i], "--write-deadline-ms", &value)) {
      if (!ParseSize(value, &n) || n > INT32_MAX) return Usage();
      tcp_options.write_deadline_ms = static_cast<int>(n);
    } else if (ParseFlag(argv[i], "--drain-deadline-ms", &value)) {
      if (!ParseSize(value, &n) || n > INT32_MAX) return Usage();
      tcp_options.drain_deadline_ms = static_cast<int>(n);
    } else if (ParseFlag(argv[i], "--default-deadline-ms", &value)) {
      if (!ParseSize(value, &n) || n > INT32_MAX) return Usage();
      tcp_options.default_deadline_ms = static_cast<int>(n);
    } else if (ParseFlag(argv[i], "--admission", &value)) {
      if (value == "on") {
        service_options.admission.enabled = true;
      } else if (value == "off") {
        service_options.admission.enabled = false;
      } else {
        return Usage();
      }
    } else if (ParseFlag(argv[i], "--max-expensive", &value)) {
      if (!ParseSize(value, &n)) return Usage();
      service_options.admission.max_expensive = static_cast<size_t>(n);
    } else {
      return Usage();
    }
  }

  semandaq::server::SemandaqService service(service_options);
  semandaq::server::SemandaqService::SessionState boot;
  if (!db_dir.empty()) {
    // Warm restart: reload the catalog when one exists; a missing manifest
    // just means a first run against an empty directory.
    auto opened = service.Execute(&boot, "opendb " + db_dir);
    if (opened.ok()) {
      std::fprintf(stderr, "%s", opened->c_str());
    } else if (opened.status().code() !=
               semandaq::common::StatusCode::kNotFound) {
      std::fprintf(stderr, "semandaq_server: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
  }

  semandaq::server::TcpServer server(&service, tcp_options);
  const semandaq::common::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "semandaq_server: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("semandaq_server listening on %s:%u\n", tcp_options.host.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  server.Wait();

  if (!db_dir.empty()) {
    auto saved = service.Execute(&boot, "savedb " + db_dir);
    if (!saved.ok()) {
      std::fprintf(stderr, "semandaq_server: save on shutdown failed: %s\n",
                   saved.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "%s", saved->c_str());
  }
  return 0;
}
