#!/usr/bin/env python3
"""Records the code-columnar repair engine's A/B ratios in the artifact.

Usage: bench_repair_ratio.py [--semandaq-build-type=TYPE] BENCH_repair.json

--semandaq-build-type stamps the semandaq library's CMAKE_BUILD_TYPE into
the artifact context as "semandaq_build_type" (the benchmark-emitted
"library_build_type" describes libbenchmark's own compile, which the
Debian package ships as "debug" — see bench_simd_ratio.py).

Reads the BM_Repair sweep (benchmark args = tuples / worker lanes /
requested kernel tier, 0 lanes = all hardware threads; the "simd_level"
counter is the tier that actually ran after host clamping) and the
BM_RepairRows baseline (serial row-hash detection, Value-keyed group
resolution) and writes back into BENCH_repair.json under "repair_ratios",
per tuple count:

  * rows_over_encoded_hw: BM_RepairRows / BM_Repair at hardware threads and
    the best vector tier — the detect -> repair -> audit loop routed
    through one warm encoded snapshot versus the row-hash serial engine it
    replaced. The acceptance bar is >= 3x at 64k tuples.
  * rows_over_encoded_best: the same numerator over the fastest encoded
    configuration that ran (single-core hosts often beat the "hw threads"
    row by skipping pool dispatch).
  * scalar_over_vector: encoded serial scalar / encoded serial best vector
    tier — what the kernel tier contributes inside the repair loop.
  * serial_over_N_threads: encoded thread scaling at the best vector tier.

The RepairResult itself is byte-identical across every configuration
(gated by tests/parallel_repair_test.cc) — these ratios are wall-clock
only. Exits nonzero only on malformed input — shared CI runners are too
noisy for a hard perf gate; acceptance is judged from the recorded
artifact.
"""

import json
import sys


def real_runs(benchmarks, prefix):
    """Non-aggregate runs of one family, keyed by their numeric slash-args.

    Google Benchmark appends modifier segments ("process_time",
    "real_time") after the numeric args; only the numeric prefix keys the
    run.
    """
    out = {}
    for b in benchmarks:
        name = b.get("name", "")
        if b.get("run_type") == "aggregate" or not name.startswith(prefix + "/"):
            continue
        args = []
        for part in name.split("/")[1:]:
            if not part.lstrip("-").isdigit():
                break
            args.append(part)
        out[tuple(args)] = b
    return out


def repair_ratios(benchmarks):
    rows = real_runs(benchmarks, "BM_RepairRows")
    encoded = real_runs(benchmarks, "BM_Repair")
    by_tuples = {}
    for (tuples, threads, _level), b in encoded.items():
        by_tuples.setdefault(tuples, []).append(
            (int(threads), b.get("simd_level"), b["real_time"]))
    out = {}
    for tuples, entries in sorted(by_tuples.items()):
        rec = {}
        vector = [(t, lvl, ms) for t, lvl, ms in entries if lvl and lvl > 0]
        serial_vec = [(lvl, ms) for t, lvl, ms in vector if t == 1]
        serial_scalar = [ms for t, lvl, ms in entries if t == 1 and lvl == 0]
        best_lvl = None
        if serial_vec:
            best_lvl, serial_ms = max(serial_vec)
            rec["encoded_serial_ms"] = serial_ms
            rec["vector_level"] = best_lvl
            if serial_scalar:
                rec["encoded_scalar_ms"] = serial_scalar[0]
                rec["scalar_over_vector"] = round(serial_scalar[0] / serial_ms, 3)
            for t, lvl, ms in sorted(vector):
                if t in (0, 1) or lvl != best_lvl:
                    continue
                rec[f"threads_{t}_ms"] = ms
                rec[f"serial_over_{t}_threads"] = round(serial_ms / ms, 3)
        hw = [ms for t, lvl, ms in vector if t == 0 and lvl == best_lvl]
        rows_b = rows.get((tuples,))
        if rows_b is not None:
            rec["rows_ms"] = rows_b["real_time"]
            if hw:
                rec["encoded_hw_ms"] = hw[0]
                rec["rows_over_encoded_hw"] = round(rows_b["real_time"] / hw[0], 3)
            if entries:
                best_ms = min(ms for _t, _lvl, ms in entries)
                rec["rows_over_encoded_best"] = round(
                    rows_b["real_time"] / best_ms, 3)
        if rec:
            out[tuples] = rec
    return out


def main(argv):
    build_type = None
    args = []
    for a in argv[1:]:
        if a.startswith("--semandaq-build-type="):
            build_type = a.split("=", 1)[1]
        else:
            args.append(a)
    if not args:
        print(__doc__, file=sys.stderr)
        return 2
    path = args[0]
    with open(path) as f:
        data = json.load(f)
    if build_type:
        data.setdefault("context", {})["semandaq_build_type"] = \
            build_type.lower()
    benchmarks = data.get("benchmarks", [])
    data["repair_ratios"] = {"BM_Repair": repair_ratios(benchmarks)}
    with open(path, "w") as f:
        json.dump(data, f, indent=1)
    for family, groups in data["repair_ratios"].items():
        for group, rec in sorted(groups.items()):
            pretty = ", ".join(f"{k}={v}" for k, v in sorted(rec.items()))
            print(f"{family}/{group}: {pretty}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
