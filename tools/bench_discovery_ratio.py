#!/usr/bin/env python3
"""Records the discovery miners' parallel and SIMD ratios in the artifact.

Usage: bench_discovery_ratio.py [--semandaq-build-type=TYPE] \\
           BENCH_discovery.json

--semandaq-build-type stamps the semandaq library's CMAKE_BUILD_TYPE into
the artifact context as "semandaq_build_type" (the benchmark-emitted
"library_build_type" describes libbenchmark's own compile, which the
Debian package ships as "debug" — see bench_simd_ratio.py).

Reads the BM_FdMine / BM_CfdMine sweeps (benchmark args = tuples / threads /
requested kernel tier; the "simd_level" counter is the tier that actually
ran after host clamping) and writes back into BENCH_discovery.json under
"discovery_ratios":

  * serial_over_parallel: time(threads=1) / time(threads=N) per tuple count
    at the best vector tier — the levelwise fan-out win (>= 1.8x at 4
    threads is the acceptance bar on multi-core CI; a single-core host
    shows pool overhead instead, which the artifact records honestly).
  * scalar_over_vector: time(scalar) / time(best vector tier) at
    threads=1 — the evidence-scan/intersect kernel win.
  * classwalk_over_error_exit: BM_FdMineClassWalk / BM_FdMine at the same
    serial configuration — what the e(X) == e(X∪A) early-exit buys.

Exits nonzero only on malformed input — shared CI runners are too noisy
for a hard perf gate; acceptance is judged from the recorded artifact.
"""

import json
import sys


def real_runs(benchmarks, prefix):
    """Non-aggregate runs of one family, keyed by their slash-args tuple."""
    out = {}
    for b in benchmarks:
        name = b.get("name", "")
        if b.get("run_type") == "aggregate" or not name.startswith(prefix + "/"):
            continue
        args = tuple(name.split("/")[1:])
        out[args] = b
    return out


def mine_ratios(benchmarks, family):
    """Thread and tier ratios for one BM_FdMine-shaped sweep."""
    runs = real_runs(benchmarks, family)
    by_tuples = {}
    for (tuples, threads, _level), b in runs.items():
        by_tuples.setdefault(tuples, []).append(
            (int(threads), b.get("simd_level"), b["real_time"]))
    out = {}
    for tuples, entries in by_tuples.items():
        rec = {}
        vector = [(t, lvl, ms) for t, lvl, ms in entries if lvl and lvl > 0]
        serial_vec = [(lvl, ms) for t, lvl, ms in vector if t == 1]
        serial_scalar = [ms for t, lvl, ms in entries if t == 1 and lvl == 0]
        if serial_vec:
            best_lvl, serial_ms = max(serial_vec)
            rec["serial_ms"] = serial_ms
            rec["vector_level"] = best_lvl
            for t, lvl, ms in sorted(vector):
                if t == 1 or lvl != best_lvl:
                    continue
                rec[f"threads_{t}_ms"] = ms
                rec[f"serial_over_{t}_threads"] = round(serial_ms / ms, 3)
            if serial_scalar:
                rec["scalar_ms"] = serial_scalar[0]
                rec["scalar_over_vector"] = round(serial_scalar[0] / serial_ms, 3)
        if rec:
            out[tuples] = rec
    return out


def classwalk_ratio(benchmarks):
    """BM_FdMineClassWalk vs serial BM_FdMine at matching tiers."""
    walk = real_runs(benchmarks, "BM_FdMineClassWalk")
    mine = real_runs(benchmarks, "BM_FdMine")
    out = {}
    for (level,), wb in walk.items():
        mb = mine.get(("64000", "1", level))
        if mb is None:
            continue
        out[f"level_{wb.get('simd_level')}"] = {
            "classwalk_ms": wb["real_time"],
            "error_exit_ms": mb["real_time"],
            "classwalk_over_error_exit": round(
                wb["real_time"] / mb["real_time"], 3),
        }
    return out


def main(argv):
    build_type = None
    args = []
    for a in argv[1:]:
        if a.startswith("--semandaq-build-type="):
            build_type = a.split("=", 1)[1]
        else:
            args.append(a)
    if not args:
        print(__doc__, file=sys.stderr)
        return 2
    path = args[0]
    with open(path) as f:
        data = json.load(f)
    if build_type:
        data.setdefault("context", {})["semandaq_build_type"] = \
            build_type.lower()
    benchmarks = data.get("benchmarks", [])
    data["discovery_ratios"] = {
        "BM_FdMine": mine_ratios(benchmarks, "BM_FdMine"),
        "BM_CfdMine": mine_ratios(benchmarks, "BM_CfdMine"),
        "BM_FdMineClassWalk": classwalk_ratio(benchmarks),
    }
    with open(path, "w") as f:
        json.dump(data, f, indent=1)
    for family, groups in data["discovery_ratios"].items():
        for group, rec in sorted(groups.items()):
            pretty = ", ".join(f"{k}={v}" for k, v in sorted(rec.items()))
            print(f"{family}/{group}: {pretty}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
