#!/usr/bin/env python3
"""Sustained-QPS benchmark for the semandaq server over loopback TCP.

Usage: bench_server_qps.py --server=PATH [--rows=N] [--clients=N]
           [--seconds=S] [--lanes=N] [--out=BENCH_server.json]

Launches the server on an ephemeral port, generates a hospital relation of
--rows tuples (plus mined CFDs so detect does real work), then opens
--clients concurrent connections that issue `detect hospital` back to back
for --seconds. Each client is one OS thread speaking the length-prefixed
frame protocol (docs/server.md) with Python's stdlib socket — no external
dependencies. Reports sustained queries/second and per-request latency
percentiles into the JSON artifact.

Exits nonzero only on a malfunction (server died, a request failed, or a
response mismatched the reference); shared CI runners are too noisy for a
hard perf gate, so throughput is judged from the recorded artifact.
"""

import argparse
import json
import socket
import struct
import subprocess
import sys
import threading
import time


def send_frame(sock, payload: bytes) -> None:
    sock.sendall(struct.pack("<I", len(payload)) + payload)


def recv_exact(sock, n: int) -> bytes:
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionError("server closed the connection")
        buf += chunk
    return buf


def call(sock, command: str) -> str:
    """One request/response exchange; raises on a server-side error."""
    send_frame(sock, command.encode())
    (length,) = struct.unpack("<I", recv_exact(sock, 4))
    payload = recv_exact(sock, length)
    if not payload or payload[0:1] != b"\x00":
        raise RuntimeError(f"{command!r} failed: {payload[1:].decode(errors='replace')}")
    return payload[1:].decode()


def connect(port: int) -> socket.socket:
    sock = socket.create_connection(("127.0.0.1", port), timeout=60)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


class ClientWorker(threading.Thread):
    """Issues `detect hospital` back to back until the deadline."""

    def __init__(self, port: int, deadline: float, reference: str):
        super().__init__()
        self.port = port
        self.deadline = deadline
        self.reference = reference
        self.latencies_ms = []
        self.error = None

    def run(self):
        try:
            sock = connect(self.port)
            try:
                while time.monotonic() < self.deadline:
                    t0 = time.monotonic()
                    out = call(sock, "detect hospital")
                    self.latencies_ms.append((time.monotonic() - t0) * 1e3)
                    if out != self.reference:
                        raise RuntimeError("response diverged from reference")
            finally:
                sock.close()
        except Exception as e:  # surfaced by the main thread
            self.error = e


def percentile(sorted_vals, p):
    if not sorted_vals:
        return None
    i = min(len(sorted_vals) - 1, int(p / 100.0 * len(sorted_vals)))
    return round(sorted_vals[i], 3)


def main(argv):
    ap = argparse.ArgumentParser()
    ap.add_argument("--server", required=True, help="path to semandaq_server")
    ap.add_argument("--rows", type=int, default=64000)
    ap.add_argument("--clients", type=int, default=100)
    ap.add_argument("--seconds", type=float, default=10.0)
    ap.add_argument("--lanes", type=int, default=0)
    ap.add_argument("--out", default="BENCH_server.json")
    args = ap.parse_args(argv[1:])

    proc = subprocess.Popen(
        [args.server, "--port=0", f"--lanes={args.lanes}"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True)
    try:
        line = proc.stdout.readline()
        if "listening on" not in line:
            raise RuntimeError(f"server did not start: {line!r}")
        port = int(line.rsplit(":", 1)[1])

        boot = connect(port)
        call(boot, f"gen hospital {args.rows} 5")
        # The paper's running hospital FDs; the generator's 5% noise
        # violates them, so every detect does a full scan AND finds work.
        call(boot, "cfd hospital: [ZIP] -> [STATE]")
        call(boot, "cfd hospital: [MCODE] -> [MNAME]")
        reference = call(boot, "detect hospital")
        setup = {"reference": reference.strip()}

        deadline = time.monotonic() + args.seconds
        workers = [ClientWorker(port, deadline, reference)
                   for _ in range(args.clients)]
        t_start = time.monotonic()
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        elapsed = time.monotonic() - t_start

        for w in workers:
            if w.error is not None:
                raise w.error

        call(boot, "shutdown")
        boot.close()
        proc.wait(timeout=30)

        lat = sorted(x for w in workers for x in w.latencies_ms)
        total = len(lat)
        artifact = {
            "benchmark": "server_sustained_qps",
            "rows": args.rows,
            "clients": args.clients,
            "lanes": args.lanes,
            "window_seconds": round(elapsed, 3),
            "requests": total,
            "qps": round(total / elapsed, 1) if elapsed > 0 else None,
            "latency_ms": {
                "p50": percentile(lat, 50),
                "p90": percentile(lat, 90),
                "p99": percentile(lat, 99),
                "max": round(lat[-1], 3) if lat else None,
            },
            "setup": setup,
        }
        with open(args.out, "w") as f:
            json.dump(artifact, f, indent=2)
            f.write("\n")
        print(f"{total} requests in {elapsed:.1f}s = "
              f"{artifact['qps']} qps ({args.clients} clients, "
              f"{args.rows} rows) -> {args.out}")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    sys.exit(main(sys.argv))
