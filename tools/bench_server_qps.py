#!/usr/bin/env python3
"""Sustained-QPS benchmark for the semandaq server over loopback TCP.

Usage: bench_server_qps.py --server=PATH [--rows=N] [--clients=N]
           [--seconds=S] [--lanes=N] [--fault-rate=F]
           [--out=BENCH_server.json]

Launches the server on an ephemeral port, generates a hospital relation of
--rows tuples (plus mined CFDs so detect does real work), then opens
--clients concurrent connections that issue `detect hospital` back to back
for --seconds. Each client is one OS thread speaking the length-prefixed
frame protocol (docs/server.md) with Python's stdlib socket — no external
dependencies. Reports sustained queries/second and per-request latency
percentiles into the JSON artifact.

With --fault-rate=F > 0, a second measurement window runs in which each
client, with probability F before every request, tears its connection down
mid-frame (a truncated length prefix, then an abrupt close) and
reconnects — the overload/robustness number (docs/robustness.md). The
artifact records the clean and faulty windows side by side; every response
in both windows is still checked against the serial reference, so the
faulty window doubles as a correctness gate under connection churn.

With --hol-seconds=S > 0 (the default), two more server runs measure the
head-of-line metric: cheap-op (`epoch`) latency percentiles while
--hol-miners connections storm `mine hospital`, once with --admission=off
and once with --admission=on (docs/robustness.md, Admission control). The
artifact records both and the cheap-p99 improvement ratio.

Exits nonzero only on a malfunction (server died, a request failed, or a
response mismatched the reference); shared CI runners are too noisy for a
hard perf gate, so throughput is judged from the recorded artifact.
"""

import argparse
import json
import random
import socket
import struct
import subprocess
import sys
import threading
import time


def send_frame(sock, payload: bytes) -> None:
    sock.sendall(struct.pack("<I", len(payload)) + payload)


def recv_exact(sock, n: int) -> bytes:
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionError("server closed the connection")
        buf += chunk
    return buf


# Response status bytes (src/server/protocol.h): 0 ok, 1 error,
# 2 cancelled, 3 deadline exceeded, 4 busy (u32-LE retry hint follows).
STATUS_OK, STATUS_ERROR, STATUS_CANCELLED, STATUS_DEADLINE, STATUS_BUSY = range(5)


def call_raw(sock, command: str):
    """One request/response exchange; returns (status, retry_after_ms, text)."""
    send_frame(sock, command.encode())
    (length,) = struct.unpack("<I", recv_exact(sock, 4))
    payload = recv_exact(sock, length)
    if not payload:
        raise RuntimeError(f"{command!r}: empty response frame")
    status = payload[0]
    if status == STATUS_BUSY:
        if len(payload) < 5:
            raise RuntimeError(f"{command!r}: truncated busy response")
        (retry_ms,) = struct.unpack("<I", payload[1:5])
        return status, retry_ms, payload[5:].decode(errors="replace")
    return status, 0, payload[1:].decode(errors="replace")


def call(sock, command: str) -> str:
    """call_raw that raises on anything but a plain success."""
    status, _, text = call_raw(sock, command)
    if status != STATUS_OK:
        raise RuntimeError(f"{command!r} failed (status {status}): {text}")
    return text


def connect(port: int) -> socket.socket:
    sock = socket.create_connection(("127.0.0.1", port), timeout=60)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


class ClientWorker(threading.Thread):
    """Issues `detect hospital` back to back until the deadline, optionally
    injecting mid-frame disconnects at `fault_rate` per request."""

    def __init__(self, port: int, deadline: float, reference: str,
                 fault_rate: float = 0.0, seed: int = 0):
        super().__init__()
        self.port = port
        self.deadline = deadline
        self.reference = reference
        self.fault_rate = fault_rate
        self.rng = random.Random(seed)
        self.latencies_ms = []
        self.disconnects = 0
        self.error = None

    def run(self):
        try:
            sock = connect(self.port)
            try:
                while time.monotonic() < self.deadline:
                    if self.fault_rate > 0 and self.rng.random() < self.fault_rate:
                        # Torn frame, then vanish: the server must reclaim
                        # the handler and keep serving everyone else.
                        try:
                            sock.sendall(struct.pack("<I", 100)[:2])
                        except OSError:
                            pass
                        sock.close()
                        self.disconnects += 1
                        sock = connect(self.port)
                    t0 = time.monotonic()
                    out = call(sock, "detect hospital")
                    self.latencies_ms.append((time.monotonic() - t0) * 1e3)
                    if out != self.reference:
                        raise RuntimeError("response diverged from reference")
            finally:
                sock.close()
        except Exception as e:  # surfaced by the main thread
            self.error = e


def percentile(sorted_vals, p):
    if not sorted_vals:
        return None
    i = min(len(sorted_vals) - 1, int(p / 100.0 * len(sorted_vals)))
    return round(sorted_vals[i], 3)


def run_window(port, clients, seconds, reference, fault_rate):
    """One measurement window; returns its artifact fragment."""
    deadline = time.monotonic() + seconds
    workers = [ClientWorker(port, deadline, reference, fault_rate, seed=i + 1)
               for i in range(clients)]
    t_start = time.monotonic()
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    elapsed = time.monotonic() - t_start

    for w in workers:
        if w.error is not None:
            raise w.error

    lat = sorted(x for w in workers for x in w.latencies_ms)
    total = len(lat)
    return {
        "fault_rate": fault_rate,
        "window_seconds": round(elapsed, 3),
        "requests": total,
        "injected_disconnects": sum(w.disconnects for w in workers),
        "qps": round(total / elapsed, 1) if elapsed > 0 else None,
        "latency_ms": {
            "p50": percentile(lat, 50),
            "p90": percentile(lat, 90),
            "p99": percentile(lat, 99),
            "max": round(lat[-1], 3) if lat else None,
        },
    }


class CheapProbe(threading.Thread):
    """Issues one cheap command in a paced loop, recording latency. Busy
    sheds honor the server's retry hint; they are counted, not failed."""

    def __init__(self, port: int, deadline: float, command: str):
        super().__init__()
        self.port = port
        self.deadline = deadline
        self.command = command
        self.latencies_ms = []
        self.sheds = 0
        self.error = None

    def run(self):
        try:
            sock = connect(self.port)
            try:
                while time.monotonic() < self.deadline:
                    t0 = time.monotonic()
                    status, retry_ms, text = call_raw(sock, self.command)
                    if status == STATUS_OK:
                        self.latencies_ms.append((time.monotonic() - t0) * 1e3)
                    elif status == STATUS_BUSY:
                        self.sheds += 1
                        time.sleep(min(retry_ms, 200) / 1e3)
                    else:
                        raise RuntimeError(
                            f"{self.command!r} failed (status {status}): {text}")
                    time.sleep(0.002)
            finally:
                sock.close()
        except Exception as e:
            self.error = e


class MineStorm(threading.Thread):
    """Fires `mine hospital` back to back — the expensive traffic that
    causes head-of-line blocking for the cheap probes."""

    def __init__(self, port: int, deadline: float):
        super().__init__()
        self.port = port
        self.deadline = deadline
        self.completed = 0
        self.sheds = 0
        self.error = None

    def run(self):
        try:
            sock = connect(self.port)
            try:
                while time.monotonic() < self.deadline:
                    status, retry_ms, text = call_raw(sock, "mine hospital")
                    if status == STATUS_OK:
                        self.completed += 1
                    elif status == STATUS_BUSY:
                        self.sheds += 1
                        time.sleep(min(retry_ms, 200) / 1e3)
                    else:
                        raise RuntimeError(
                            f"mine failed (status {status}): {text}")
            finally:
                sock.close()
        except Exception as e:
            self.error = e


def boot_server(args, extra_flags):
    """Starts a server, seeds the hospital workload, returns (proc, port)."""
    proc = subprocess.Popen(
        [args.server, "--port=0", f"--lanes={args.lanes}"] + extra_flags,
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True)
    line = proc.stdout.readline()
    if "listening on" not in line:
        proc.kill()
        proc.wait()
        raise RuntimeError(f"server did not start: {line!r}")
    port = int(line.rsplit(":", 1)[1])
    return proc, port


def run_head_of_line(args, admission: bool):
    """Cheap-op latency under an expensive-mine storm, one server run.

    The head-of-line metric (docs/robustness.md): with admission off, a
    storm of concurrent mines saturates every worker lane and core, and
    the cheap requests stuck behind them wear the tail latency. With
    admission on, the expensive class is capped and the cheap class keeps
    its own lane, so the cheap tail should drop. Recorded, not gated.
    """
    flags = ["--admission=on" if admission else "--admission=off"]
    proc, port = boot_server(args, flags)
    try:
        boot = connect(port)
        call(boot, f"gen hospital {args.rows} 5")
        call(boot, "cfd hospital: [ZIP] -> [STATE]")
        call(boot, "cfd hospital: [MCODE] -> [MNAME]")

        deadline = time.monotonic() + args.hol_seconds
        miners = [MineStorm(port, deadline) for _ in range(args.hol_miners)]
        probes = [CheapProbe(port, deadline, "epoch hospital")
                  for _ in range(4)]
        for t in miners + probes:
            t.start()
        for t in miners + probes:
            t.join()
        for t in miners + probes:
            if t.error is not None:
                raise t.error

        stats = call(boot, "stats")
        call(boot, "shutdown")
        boot.close()
        proc.wait(timeout=30)

        lat = sorted(x for p in probes for x in p.latencies_ms)
        return {
            "admission": admission,
            "cheap_requests": len(lat),
            "cheap_sheds": sum(p.sheds for p in probes),
            "mine_completions": sum(m.completed for m in miners),
            "mine_sheds": sum(m.sheds for m in miners),
            "cheap_latency_ms": {
                "p50": percentile(lat, 50),
                "p99": percentile(lat, 99),
                "max": round(lat[-1], 3) if lat else None,
            },
            "server_stats": dict(
                kv.split("=", 1) for kv in stats.split() if "=" in kv),
        }
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def main(argv):
    ap = argparse.ArgumentParser()
    ap.add_argument("--server", required=True, help="path to semandaq_server")
    ap.add_argument("--rows", type=int, default=64000)
    ap.add_argument("--clients", type=int, default=100)
    ap.add_argument("--seconds", type=float, default=10.0)
    ap.add_argument("--lanes", type=int, default=0)
    ap.add_argument("--fault-rate", type=float, default=0.0,
                    help="per-request mid-frame disconnect probability for "
                         "the faulty window (0 = skip the faulty window)")
    ap.add_argument("--hol-seconds", type=float, default=6.0,
                    help="head-of-line window length: cheap-op tail latency "
                         "under an expensive-mine storm, admission off vs on "
                         "(0 = skip)")
    ap.add_argument("--hol-miners", type=int, default=6,
                    help="concurrent mine connections in the head-of-line "
                         "window")
    ap.add_argument("--out", default="BENCH_server.json")
    args = ap.parse_args(argv[1:])

    proc = subprocess.Popen(
        [args.server, "--port=0", f"--lanes={args.lanes}"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True)
    try:
        line = proc.stdout.readline()
        if "listening on" not in line:
            raise RuntimeError(f"server did not start: {line!r}")
        port = int(line.rsplit(":", 1)[1])

        boot = connect(port)
        call(boot, f"gen hospital {args.rows} 5")
        # The paper's running hospital FDs; the generator's 5% noise
        # violates them, so every detect does a full scan AND finds work.
        call(boot, "cfd hospital: [ZIP] -> [STATE]")
        call(boot, "cfd hospital: [MCODE] -> [MNAME]")
        reference = call(boot, "detect hospital")

        clean = run_window(port, args.clients, args.seconds, reference, 0.0)
        faulty = None
        if args.fault_rate > 0:
            faulty = run_window(port, args.clients, args.seconds, reference,
                                args.fault_rate)

        call(boot, "shutdown")
        boot.close()
        proc.wait(timeout=30)

        head_of_line = None
        if args.hol_seconds > 0:
            hol_off = run_head_of_line(args, admission=False)
            hol_on = run_head_of_line(args, admission=True)
            p99_off = hol_off["cheap_latency_ms"]["p99"]
            p99_on = hol_on["cheap_latency_ms"]["p99"]
            head_of_line = {
                "miners": args.hol_miners,
                "window_seconds": args.hol_seconds,
                "admission_off": hol_off,
                "admission_on": hol_on,
                "cheap_p99_improvement": (
                    round(p99_off / p99_on, 2)
                    if p99_off and p99_on and p99_on > 0 else None),
            }

        artifact = {
            "benchmark": "server_sustained_qps",
            "rows": args.rows,
            "clients": args.clients,
            "lanes": args.lanes,
            "clean": clean,
            "faulty": faulty,
            "head_of_line": head_of_line,
            "setup": {"reference": reference.strip()},
        }
        with open(args.out, "w") as f:
            json.dump(artifact, f, indent=2)
            f.write("\n")
        print(f"clean: {clean['requests']} requests in "
              f"{clean['window_seconds']}s = {clean['qps']} qps "
              f"({args.clients} clients, {args.rows} rows)")
        if faulty is not None:
            print(f"faulty({args.fault_rate}): {faulty['requests']} requests "
                  f"in {faulty['window_seconds']}s = {faulty['qps']} qps, "
                  f"{faulty['injected_disconnects']} injected disconnects")
        if head_of_line is not None:
            off = head_of_line["admission_off"]["cheap_latency_ms"]
            on = head_of_line["admission_on"]["cheap_latency_ms"]
            print(f"head-of-line cheap p99: admission off {off['p99']} ms, "
                  f"on {on['p99']} ms "
                  f"(x{head_of_line['cheap_p99_improvement']})")
        print(f"-> {args.out}")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    sys.exit(main(sys.argv))
