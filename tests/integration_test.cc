// End-to-end tests driving the Semandaq facade through the full
// demonstration flow of the paper's Section 3: connect -> specify CFDs ->
// validate -> detect -> audit -> explore -> clean -> review -> monitor.

#include <gtest/gtest.h>

#include "core/semandaq.h"
#include "test_util.h"
#include "workload/customer_gen.h"
#include "workload/hospital_gen.h"

namespace semandaq::core {
namespace {

using relational::Row;
using relational::Update;
using relational::Value;

TEST(IntegrationTest, PaperWalkthrough) {
  Semandaq sys;
  ASSERT_OK(sys.Connect(semandaq::testing::PaperCustomerRelation()));

  // Specify constraints; the engine validates they "make sense".
  ASSERT_OK(sys.constraints().AddCfdsFromText(semandaq::testing::PaperCfdText()));
  ASSERT_OK_AND_ASSIGN(auto sat, sys.constraints().Validate("customer"));
  EXPECT_TRUE(sat.satisfiable);

  // Detect (both code paths agree).
  ASSERT_OK_AND_ASSIGN(auto native, sys.DetectErrors("customer"));
  ASSERT_OK_AND_ASSIGN(auto sql, sys.DetectErrors("customer",
                                                  Semandaq::DetectorKind::kSql));
  EXPECT_EQ(native.TotalVio(), sql.TotalVio());
  EXPECT_EQ(native.TotalVio(), 5);

  // Audit and report (Fig. 4).
  ASSERT_OK_AND_ASSIGN(auto report, sys.Report("customer"));
  EXPECT_EQ(report.num_tuples, 7u);
  EXPECT_EQ(report.total_vio, 5);

  // Quality map (Fig. 3).
  ASSERT_OK_AND_ASSIGN(auto map, sys.QualityMap("customer"));
  EXPECT_NE(map.find("vio="), std::string::npos);

  // Explore (Fig. 2).
  ASSERT_OK_AND_ASSIGN(auto explorer, sys.Explore("customer"));
  ASSERT_OK_AND_ASSIGN(auto entries, explorer->ListCfds());
  EXPECT_EQ(entries.size(), 2u);

  // Clean (Fig. 5), review, apply.
  ASSERT_OK_AND_ASSIGN(auto repair, sys.Clean("customer"));
  EXPECT_EQ(repair.remaining_violations, 0u);
  ASSERT_OK_AND_ASSIGN(auto review, sys.Review("customer", repair));
  EXPECT_NE(review->RenderDiff().find("->"), std::string::npos);
  ASSERT_OK(sys.ApplyRepair("customer", repair));

  // After applying, the database is consistent.
  ASSERT_OK_AND_ASSIGN(auto after, sys.DetectErrors("customer"));
  EXPECT_EQ(after.TotalVio(), 0);

  // Monitor in incremental-repair mode keeps it that way.
  ASSERT_OK_AND_ASSIGN(auto monitor, sys.StartMonitor("customer",
                                                      /*cleansed=*/true));
  Row bad = {Value::String("Zed"), Value::String("US"), Value::String("NY"),
             Value::String("10011"), Value::String("Broadway"),
             Value::String("44"), Value::String("212")};
  ASSERT_OK_AND_ASSIGN(auto mreport, monitor->OnUpdate({Update::Insert(bad)}));
  EXPECT_EQ(mreport.total_vio, 0);
  EXPECT_FALSE(mreport.repairs_applied.empty());
}

TEST(IntegrationTest, GeneratedCustomerPipeline) {
  workload::CustomerWorkloadOptions opts;
  opts.num_tuples = 800;
  opts.noise_rate = 0.05;
  opts.seed = 101;
  auto wl = workload::CustomerGenerator::Generate(opts);

  Semandaq sys;
  ASSERT_OK(sys.Connect(std::move(wl.dirty)));
  ASSERT_OK(sys.constraints().AddCfdsFromText(
      workload::CustomerGenerator::PaperCfds()));

  ASSERT_OK_AND_ASSIGN(auto before, sys.DetectErrors("customer"));
  EXPECT_GT(before.TotalVio(), 0);

  ASSERT_OK_AND_ASSIGN(auto repair, sys.Clean("customer"));
  ASSERT_OK(sys.ApplyRepair("customer", repair));

  ASSERT_OK_AND_ASSIGN(auto after, sys.DetectErrors("customer"));
  EXPECT_EQ(after.TotalVio(), 0);
}

TEST(IntegrationTest, HospitalPipelineWithSqlDetector) {
  workload::HospitalWorkloadOptions opts;
  opts.num_tuples = 400;
  opts.noise_rate = 0.05;
  opts.seed = 102;
  auto wl = workload::HospitalGenerator::Generate(opts);

  Semandaq sys;
  ASSERT_OK(sys.Connect(std::move(wl.dirty)));
  ASSERT_OK(sys.constraints().AddCfdsFromText(
      workload::HospitalGenerator::HospitalCfds()));

  ASSERT_OK_AND_ASSIGN(auto native, sys.DetectErrors("hospital"));
  ASSERT_OK_AND_ASSIGN(auto sql, sys.DetectErrors("hospital",
                                                  Semandaq::DetectorKind::kSql));
  EXPECT_EQ(native.TotalVio(), sql.TotalVio());

  ASSERT_OK_AND_ASSIGN(auto repair, sys.Clean("hospital"));
  EXPECT_EQ(repair.remaining_violations, 0u);
}

TEST(IntegrationTest, DiscoveryToDetectionPipeline) {
  // Mine CFDs from clean reference data, then use them to find errors in a
  // dirty copy of the same domain.
  workload::CustomerWorkloadOptions clean_opts;
  clean_opts.num_tuples = 300;
  clean_opts.noise_rate = 0.0;
  clean_opts.seed = 103;
  auto reference = workload::CustomerGenerator::Generate(clean_opts);

  workload::CustomerWorkloadOptions dirty_opts;
  dirty_opts.num_tuples = 300;
  dirty_opts.noise_rate = 0.08;
  dirty_opts.seed = 104;
  auto target = workload::CustomerGenerator::Generate(dirty_opts);

  Semandaq sys;
  reference.clean.set_name("customer");  // mine under the target's name
  ASSERT_OK(sys.Connect(std::move(reference.clean)));
  discovery::CfdMinerOptions mopts;
  mopts.max_lhs = 2;
  mopts.min_support = 4;
  ASSERT_OK_AND_ASSIGN(size_t added, sys.constraints().DiscoverFrom("customer", mopts));
  EXPECT_GT(added, 0u);

  // Swap in the dirty data and detect with the mined constraints.
  sys.database().PutRelation(std::move(target.dirty));
  ASSERT_OK_AND_ASSIGN(auto table, sys.DetectErrors("customer"));
  EXPECT_GT(table.TotalVio(), 0) << "mined CFDs should catch injected noise";
}

TEST(IntegrationTest, PersistedCfdsSurviveReload) {
  Semandaq sys;
  ASSERT_OK(sys.Connect(semandaq::testing::PaperCustomerRelation()));
  ASSERT_OK(sys.constraints().AddCfdsFromText(semandaq::testing::PaperCfdText()));
  ASSERT_OK(sys.constraints().Persist());
  sys.constraints().Clear();
  ASSERT_OK(sys.constraints().LoadPersisted());
  ASSERT_OK_AND_ASSIGN(auto table, sys.DetectErrors("customer"));
  EXPECT_EQ(table.TotalVio(), 5);
}

TEST(IntegrationTest, ErrorsSurfaceCleanly) {
  Semandaq sys;
  EXPECT_FALSE(sys.DetectErrors("missing").ok());
  EXPECT_FALSE(sys.Report("missing").ok());
  EXPECT_FALSE(sys.Clean("missing").ok());
  EXPECT_FALSE(sys.StartMonitor("missing").ok());
  ASSERT_OK(sys.Connect(semandaq::testing::PaperCustomerRelation()));
  EXPECT_FALSE(sys.Connect(semandaq::testing::PaperCustomerRelation()).ok());
}

}  // namespace
}  // namespace semandaq::core
