#ifndef SEMANDAQ_TESTS_TEST_UTIL_H_
#define SEMANDAQ_TESTS_TEST_UTIL_H_

#include <initializer_list>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "relational/relation.h"

/// Gtest glue for the Status/Result error model.
#define ASSERT_OK(expr)                                        \
  do {                                                         \
    const ::semandaq::common::Status _st = (expr);             \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                   \
  } while (0)

#define EXPECT_OK(expr)                                        \
  do {                                                         \
    const ::semandaq::common::Status _st = (expr);             \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                   \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                        \
  auto SEMANDAQ_CONCAT_(_r_, __LINE__) = (expr);               \
  ASSERT_TRUE(SEMANDAQ_CONCAT_(_r_, __LINE__).ok())            \
      << SEMANDAQ_CONCAT_(_r_, __LINE__).status().ToString();  \
  lhs = std::move(SEMANDAQ_CONCAT_(_r_, __LINE__)).value()

namespace semandaq::testing {

/// Builds an all-string relation from a header and string rows ("" = NULL).
inline relational::Relation MakeStringRelation(
    const std::string& name, std::initializer_list<std::string> attrs,
    std::initializer_list<std::initializer_list<const char*>> rows) {
  std::vector<std::string> names(attrs.begin(), attrs.end());
  relational::Relation rel{name, relational::Schema::AllStrings(names)};
  for (const auto& r : rows) {
    relational::Row row;
    for (const char* cell : r) {
      row.push_back(std::string(cell).empty()
                        ? relational::Value::Null()
                        : relational::Value::String(cell));
    }
    rel.MustInsert(std::move(row));
  }
  return rel;
}

/// The customer instance used in the paper's Section 3 walkthrough: UK
/// customers sharing zip EH2 4SD with three different streets (the Fig. 2
/// drill-down), a CC/CNT inconsistency, and clean Dutch/US tuples.
inline relational::Relation PaperCustomerRelation() {
  return MakeStringRelation(
      "customer", {"NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"},
      {
          {"Mike", "UK", "Edinburgh", "EH2 4SD", "Mayfield Rd", "44", "131"},
          {"Rick", "UK", "Edinburgh", "EH2 4SD", "Crichton St", "44", "131"},
          {"Joe", "UK", "Edinburgh", "EH2 4SD", "Mayfield Rd", "44", "131"},
          {"Mary", "UK", "Edinburgh", "EH8 9LE", "Princes St", "44", "131"},
          {"Anna", "NL", "Amsterdam", "1016", "Keizersgracht", "31", "20"},
          {"Bob", "US", "Chicago", "60614", "Clark St", "1", "312"},
          // CC says UK but CNT says US: violates the constant CFD phi4.
          {"Eve", "US", "NewYork", "10011", "Broadway", "44", "212"},
      });
}

/// Sigma from the paper's Section 3 (phi2 and phi4), in parser notation.
inline const char* PaperCfdText() {
  return "customer: [CNT=UK, ZIP=_] -> [STR=_]\n"
         "customer: [CC=44] -> [CNT=UK]\n";
}

}  // namespace semandaq::testing

#endif  // SEMANDAQ_TESTS_TEST_UTIL_H_
