// Determinism of the sharded detection path (DetectorOptions::num_threads):
// the shard of a tuple is a pure function of its LHS codes and the merge
// re-establishes the serial first-touch order, so the sharded ViolationTable
// must be *exactly* the serial one — same singles in the same sequence, same
// groups in the same sequence with the same member order — for every thread
// count, not merely equivalent up to reordering.

#include <vector>

#include <gtest/gtest.h>

#include "cfd/cfd_parser.h"
#include "detect/native_detector.h"
#include "detect/shard_plan.h"
#include "relational/encoded_relation.h"
#include "test_util.h"
#include "workload/customer_gen.h"
#include "workload/hospital_gen.h"

namespace semandaq::detect {
namespace {

using relational::EncodedRelation;
using relational::Relation;
using relational::Row;
using relational::TupleId;
using relational::Value;

std::vector<cfd::Cfd> Parse(const std::string& text) {
  auto r = cfd::ParseCfdSet(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(*r) : std::vector<cfd::Cfd>{};
}

/// Exact (order-sensitive) equality of two violation tables.
void ExpectExactlyEqual(const ViolationTable& serial,
                        const ViolationTable& sharded, const Relation& rel) {
  EXPECT_EQ(serial.TotalVio(), sharded.TotalVio());
  EXPECT_EQ(serial.NumViolatingTuples(), sharded.NumViolatingTuples());
  for (TupleId tid = 0; tid < rel.IdBound(); ++tid) {
    ASSERT_EQ(serial.vio(tid), sharded.vio(tid)) << "vio mismatch at " << tid;
  }

  ASSERT_EQ(serial.singles().size(), sharded.singles().size());
  for (size_t i = 0; i < serial.singles().size(); ++i) {
    const SingleViolation& a = serial.singles()[i];
    const SingleViolation& b = sharded.singles()[i];
    EXPECT_EQ(a.tid, b.tid) << "single " << i;
    EXPECT_EQ(a.cfd_index, b.cfd_index) << "single " << i;
    EXPECT_EQ(a.pattern_index, b.pattern_index) << "single " << i;
  }

  ASSERT_EQ(serial.groups().size(), sharded.groups().size());
  for (size_t i = 0; i < serial.groups().size(); ++i) {
    const ViolationGroup& a = serial.groups()[i];
    const ViolationGroup& b = sharded.groups()[i];
    EXPECT_EQ(a.fd_group, b.fd_group) << "group " << i;
    EXPECT_EQ(a.cfd_index, b.cfd_index) << "group " << i;
    ASSERT_EQ(a.lhs_key.size(), b.lhs_key.size()) << "group " << i;
    for (size_t k = 0; k < a.lhs_key.size(); ++k) {
      EXPECT_EQ(a.lhs_key[k], b.lhs_key[k]) << "group " << i << " key " << k;
    }
    ASSERT_EQ(a.members.size(), b.members.size()) << "group " << i;
    for (size_t k = 0; k < a.members.size(); ++k) {
      EXPECT_EQ(a.members[k], b.members[k]) << "group " << i << " member " << k;
      EXPECT_EQ(a.member_rhs[k], b.member_rhs[k]) << "group " << i;
      EXPECT_EQ(a.member_partners[k], b.member_partners[k]) << "group " << i;
    }
  }
}

ViolationTable DetectWith(const Relation& rel, const std::vector<cfd::Cfd>& cfds,
                          size_t num_threads,
                          const EncodedRelation* warm = nullptr) {
  DetectorOptions options;
  options.num_threads = num_threads;
  NativeDetector detector(&rel, cfds, options);
  if (warm != nullptr) detector.set_encoded(warm);
  auto table = detector.Detect();
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  return table.ok() ? std::move(*table) : ViolationTable{};
}

void ExpectShardedMatchesSerial(const Relation& rel,
                                const std::vector<cfd::Cfd>& cfds) {
  const ViolationTable serial = DetectWith(rel, cfds, 1);
  for (const size_t threads : {size_t{2}, size_t{4}, size_t{7}}) {
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    ExpectExactlyEqual(serial, DetectWith(rel, cfds, threads), rel);
  }
  // 0 = one lane per hardware thread (whatever this host has).
  ExpectExactlyEqual(serial, DetectWith(rel, cfds, 0), rel);
}

TEST(ShardedDetectTest, MatchesSerialOnNoisyCustomer) {
  workload::CustomerWorkloadOptions opts;
  opts.num_tuples = 6000;
  opts.noise_rate = 0.10;
  opts.seed = 21;
  const auto wl = workload::CustomerGenerator::Generate(opts);
  ExpectShardedMatchesSerial(wl.dirty,
                             Parse(workload::CustomerGenerator::PaperCfds()));
}

TEST(ShardedDetectTest, MatchesSerialOnNoisyHospital) {
  workload::HospitalWorkloadOptions opts;
  opts.num_tuples = 6000;
  opts.noise_rate = 0.10;
  opts.seed = 22;
  const auto wl = workload::HospitalGenerator::Generate(opts);
  ExpectShardedMatchesSerial(wl.dirty,
                             Parse(workload::HospitalGenerator::HospitalCfds()));
}

TEST(ShardedDetectTest, MatchesSerialThroughWarmSnapshot) {
  workload::CustomerWorkloadOptions opts;
  opts.num_tuples = 6000;
  opts.noise_rate = 0.08;
  opts.seed = 23;
  const auto wl = workload::CustomerGenerator::Generate(opts);
  const auto cfds = Parse(workload::CustomerGenerator::PaperCfds());
  const EncodedRelation warm(&wl.dirty);
  const ViolationTable serial = DetectWith(wl.dirty, cfds, 1, &warm);
  ExpectExactlyEqual(serial, DetectWith(wl.dirty, cfds, 4, &warm), wl.dirty);
}

TEST(ShardedDetectTest, EmptyRelation) {
  const Relation rel("t", relational::Schema::AllStrings({"A", "B"}));
  const auto cfds = Parse("t: [A] -> [B]\nt: [A=1] -> [B=x]\n");
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    const ViolationTable table = DetectWith(rel, cfds, threads);
    EXPECT_EQ(table.TotalVio(), 0) << threads << " threads";
    EXPECT_TRUE(table.groups().empty());
    EXPECT_TRUE(table.singles().empty());
  }
}

TEST(ShardedDetectTest, SingleGroupLandsInOneShard) {
  // Every tuple shares one LHS key, so all the multi-tuple work lands in a
  // single shard while the others stay empty — the extreme skew case. Large
  // enough that the planner actually shards (see kMinTuplesPerShard).
  Relation rel("t", relational::Schema::AllStrings({"K", "V"}));
  for (int i = 0; i < 2000; ++i) {
    rel.MustInsert({Value::String("key"), Value::String(i % 2 ? "x" : "y")});
  }
  const auto cfds = Parse("t: [K] -> [V]");
  const ViolationTable serial = DetectWith(rel, cfds, 1);
  ASSERT_EQ(serial.groups().size(), 1u);
  EXPECT_EQ(serial.groups()[0].members.size(), 2000u);
  for (const size_t threads : {size_t{2}, size_t{4}, size_t{7}}) {
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    ExpectExactlyEqual(serial, DetectWith(rel, cfds, threads), rel);
  }
}

TEST(ShardedDetectTest, PlannerNarrowsTinyRelations) {
  // Below the per-shard floor the plan collapses to the serial scan; the
  // knob is still honored API-wise (result identical, no worker overhead).
  EXPECT_EQ(PlanShards(1, 1'000'000).num_shards, 1u);
  EXPECT_EQ(PlanShards(4, 100).num_shards, 1u);
  EXPECT_EQ(PlanShards(4, 4 * kMinTuplesPerShard).num_shards, 4u);
  EXPECT_EQ(PlanShards(7, 2 * kMinTuplesPerShard + 1).num_shards, 2u);
  EXPECT_EQ(PlanShards(2, 0).num_shards, 1u);
  EXPECT_GE(PlanShards(0, 1'000'000).num_shards, 1u);  // hardware-resolved
  // An absurd explicit count must not translate into thousands of threads.
  EXPECT_LE(PlanShards(999'999, 100'000'000).num_shards, kMaxShards);

  const Relation rel = semandaq::testing::PaperCustomerRelation();
  const auto cfds = Parse(semandaq::testing::PaperCfdText());
  ExpectExactlyEqual(DetectWith(rel, cfds, 1), DetectWith(rel, cfds, 7), rel);
}

}  // namespace
}  // namespace semandaq::detect
