#include <gtest/gtest.h>

#include "cfd/cfd.h"
#include "cfd/cfd_parser.h"
#include "cfd/pattern.h"
#include "test_util.h"

namespace semandaq::cfd {
namespace {

using relational::DataType;
using relational::Schema;
using relational::Value;

TEST(PatternValueTest, WildcardMatchesEverything) {
  PatternValue w = PatternValue::Wildcard();
  EXPECT_TRUE(w.is_wildcard());
  EXPECT_TRUE(w.Matches(Value::String("x")));
  EXPECT_TRUE(w.Matches(Value::Int(1)));
  EXPECT_TRUE(w.Matches(Value::Null()));  // mirrors `tp.A IS NULL` in SQL
  EXPECT_EQ(w.ToString(), "_");
}

TEST(PatternValueTest, ConstantMatchesEqualNonNull) {
  PatternValue c = PatternValue::Constant(Value::String("UK"));
  EXPECT_TRUE(c.is_constant());
  EXPECT_TRUE(c.Matches(Value::String("UK")));
  EXPECT_FALSE(c.Matches(Value::String("US")));
  EXPECT_FALSE(c.Matches(Value::Null()));  // NULL never matches a constant
  EXPECT_EQ(c.ToString(), "UK");
}

TEST(PatternValueTest, Compatibility) {
  PatternValue w = PatternValue::Wildcard();
  PatternValue uk = PatternValue::Constant(Value::String("UK"));
  PatternValue us = PatternValue::Constant(Value::String("US"));
  EXPECT_TRUE(w.CompatibleWith(uk));
  EXPECT_TRUE(uk.CompatibleWith(w));
  EXPECT_TRUE(uk.CompatibleWith(uk));
  EXPECT_FALSE(uk.CompatibleWith(us));
}

TEST(PatternValueTest, Equality) {
  EXPECT_EQ(PatternValue::Wildcard(), PatternValue::Wildcard());
  EXPECT_EQ(PatternValue::Constant(Value::Int(1)), PatternValue::Constant(Value::Int(1)));
  EXPECT_NE(PatternValue::Wildcard(), PatternValue::Constant(Value::Int(1)));
}

TEST(CfdTest, ResolveFillsColumns) {
  Schema schema = Schema::AllStrings({"CNT", "ZIP", "STR"});
  Cfd cfd("customer", {"CNT", "ZIP"}, "STR",
          {PatternTuple{{PatternValue::Constant(Value::String("UK")),
                         PatternValue::Wildcard()},
                        PatternValue::Wildcard()}});
  ASSERT_OK(cfd.Resolve(schema));
  EXPECT_EQ(cfd.lhs_cols(), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(cfd.rhs_col(), 2u);
}

TEST(CfdTest, ResolveRejectsUnknownAttribute) {
  Schema schema = Schema::AllStrings({"A"});
  Cfd cfd("t", {"MISSING"}, "A", {});
  EXPECT_FALSE(cfd.Resolve(schema).ok());
}

TEST(CfdTest, ResolveRejectsRhsInLhs) {
  Schema schema = Schema::AllStrings({"A", "B"});
  Cfd cfd("t", {"A", "B"}, "A",
          {PatternTuple{{PatternValue::Wildcard(), PatternValue::Wildcard()},
                        PatternValue::Wildcard()}});
  EXPECT_FALSE(cfd.Resolve(schema).ok());
}

TEST(CfdTest, ResolveCoercesTypedConstants) {
  Schema schema;
  ASSERT_OK(schema.AddAttribute({"CC", DataType::kInt, {}}));
  ASSERT_OK(schema.AddAttribute({"CNT", DataType::kString, {}}));
  Cfd cfd("t", {"CC"}, "CNT",
          {PatternTuple{{PatternValue::Constant(Value::String("44"))},
                        PatternValue::Constant(Value::String("UK"))}});
  ASSERT_OK(cfd.Resolve(schema));
  EXPECT_EQ(cfd.tableau()[0].lhs[0].constant(), Value::Int(44));
  EXPECT_EQ(cfd.tableau()[0].rhs.constant(), Value::String("UK"));
}

TEST(CfdTest, ResolveRejectsNonCoercibleConstant) {
  Schema schema;
  ASSERT_OK(schema.AddAttribute({"CC", DataType::kInt, {}}));
  ASSERT_OK(schema.AddAttribute({"CNT", DataType::kString, {}}));
  Cfd cfd("t", {"CC"}, "CNT",
          {PatternTuple{{PatternValue::Constant(Value::String("not_int"))},
                        PatternValue::Wildcard()}});
  EXPECT_FALSE(cfd.Resolve(schema).ok());
}

TEST(CfdTest, IsStandardFd) {
  Cfd fd("t", {"A"}, "B",
         {PatternTuple{{PatternValue::Wildcard()}, PatternValue::Wildcard()}});
  EXPECT_TRUE(fd.IsStandardFd());
  Cfd cond("t", {"A"}, "B",
           {PatternTuple{{PatternValue::Constant(Value::String("x"))},
                         PatternValue::Wildcard()}});
  EXPECT_FALSE(cond.IsStandardFd());
}

TEST(CfdTest, GroupByEmbeddedFdMergesSameFd) {
  Cfd a("t", {"A", "B"}, "C",
        {PatternTuple{{PatternValue::Wildcard(), PatternValue::Wildcard()},
                      PatternValue::Wildcard()}});
  Cfd b("t", {"A", "B"}, "C",
        {PatternTuple{{PatternValue::Constant(Value::String("1")),
                       PatternValue::Wildcard()},
                      PatternValue::Wildcard()},
         PatternTuple{{PatternValue::Constant(Value::String("2")),
                       PatternValue::Wildcard()},
                      PatternValue::Wildcard()}});
  Cfd c("t", {"A"}, "C",
        {PatternTuple{{PatternValue::Wildcard()}, PatternValue::Wildcard()}});
  auto groups = GroupByEmbeddedFd({a, b, c});
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].members.size(), 3u);  // a's row + b's two rows
  EXPECT_EQ(groups[1].members.size(), 1u);
}

TEST(CfdTest, GroupKeyRespectsAttributeOrder) {
  // [A,B] -> C and [B,A] -> C are the same FD semantically, but pattern
  // positions differ; grouping must keep them apart.
  Cfd ab("t", {"A", "B"}, "C",
         {PatternTuple{{PatternValue::Wildcard(), PatternValue::Wildcard()},
                       PatternValue::Wildcard()}});
  Cfd ba("t", {"B", "A"}, "C",
         {PatternTuple{{PatternValue::Wildcard(), PatternValue::Wildcard()},
                       PatternValue::Wildcard()}});
  EXPECT_EQ(GroupByEmbeddedFd({ab, ba}).size(), 2u);
}

// ---------------------------------------------------------------- Parser --

TEST(CfdParserTest, ParsesConstantCfd) {
  ASSERT_OK_AND_ASSIGN(Cfd cfd, ParseCfd("customer: [CC=44] -> [CNT=UK]"));
  EXPECT_EQ(cfd.relation(), "customer");
  EXPECT_EQ(cfd.lhs_attrs(), (std::vector<std::string>{"CC"}));
  EXPECT_EQ(cfd.rhs_attr(), "CNT");
  ASSERT_EQ(cfd.tableau().size(), 1u);
  EXPECT_EQ(cfd.tableau()[0].lhs[0].constant(), Value::String("44"));
  EXPECT_EQ(cfd.tableau()[0].rhs.constant(), Value::String("UK"));
}

TEST(CfdParserTest, ParsesVariableCfdWithWildcards) {
  ASSERT_OK_AND_ASSIGN(Cfd cfd, ParseCfd("customer: [CNT=UK, ZIP=_] -> [STR=_]"));
  EXPECT_EQ(cfd.lhs_attrs(), (std::vector<std::string>{"CNT", "ZIP"}));
  EXPECT_TRUE(cfd.tableau()[0].lhs[1].is_wildcard());
  EXPECT_TRUE(cfd.tableau()[0].rhs.is_wildcard());
}

TEST(CfdParserTest, BareAttributesMeanWildcard) {
  ASSERT_OK_AND_ASSIGN(Cfd cfd, ParseCfd("t: [A, B] -> [C]"));
  EXPECT_TRUE(cfd.tableau()[0].lhs[0].is_wildcard());
  EXPECT_TRUE(cfd.tableau()[0].rhs.is_wildcard());
  EXPECT_TRUE(cfd.IsStandardFd());
}

TEST(CfdParserTest, ParsesTableauBlock) {
  ASSERT_OK_AND_ASSIGN(
      Cfd cfd, ParseCfd("customer: [CC] -> [CNT] { (44 | UK), (31 | NL), (1 | _) }"));
  ASSERT_EQ(cfd.tableau().size(), 3u);
  EXPECT_EQ(cfd.tableau()[0].lhs[0].constant(), Value::String("44"));
  EXPECT_EQ(cfd.tableau()[1].rhs.constant(), Value::String("NL"));
  EXPECT_TRUE(cfd.tableau()[2].rhs.is_wildcard());
}

TEST(CfdParserTest, QuotedConstantsAllowSpacesAndEscapes) {
  ASSERT_OK_AND_ASSIGN(Cfd cfd,
                       ParseCfd("t: [M='PN-2'] -> [N='Pneumonia ''x'' care']"));
  EXPECT_EQ(cfd.tableau()[0].rhs.constant(), Value::String("Pneumonia 'x' care"));
}

TEST(CfdParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseCfd("").ok());
  EXPECT_FALSE(ParseCfd("customer").ok());
  EXPECT_FALSE(ParseCfd("customer: [A] -> ").ok());
  EXPECT_FALSE(ParseCfd("customer: [A] [B]").ok());
  EXPECT_FALSE(ParseCfd("customer: [A] -> [B, C]").ok());  // multi-attr RHS
  EXPECT_FALSE(ParseCfd("customer: [A] -> [B] trailing").ok());
  EXPECT_FALSE(ParseCfd("customer: [A] -> [B] { (1 | 2 }").ok());
  // Inline '=' combined with a tableau block is ambiguous.
  EXPECT_FALSE(ParseCfd("t: [A=1] -> [B] { (1 | 2) }").ok());
}

TEST(CfdParserTest, ParsesDocumentWithComments) {
  ASSERT_OK_AND_ASSIGN(auto cfds, ParseCfdSet("# a comment\n"
                                              "t: [A] -> [B]\n"
                                              "\n"
                                              "t: [B=1] -> [C=2]\n"));
  EXPECT_EQ(cfds.size(), 2u);
}

TEST(CfdParserTest, DocumentStopsOnBadLine) {
  EXPECT_FALSE(ParseCfdSet("t: [A] -> [B]\nbroken line\n").ok());
}

TEST(CfdParserTest, ToStringReparses) {
  const char* inputs[] = {
      "customer: [CC=44] -> [CNT=UK]",
      "customer: [CNT, ZIP] -> [CITY]",
      "customer: [CC] -> [CNT] { (44 | UK), (31 | _) }",
  };
  for (const char* in : inputs) {
    ASSERT_OK_AND_ASSIGN(Cfd cfd, ParseCfd(in));
    ASSERT_OK_AND_ASSIGN(Cfd again, ParseCfd(cfd.ToString()));
    EXPECT_EQ(cfd.ToString(), again.ToString()) << in;
  }
}

}  // namespace
}  // namespace semandaq::cfd
