#include <gtest/gtest.h>

#include "common/csv.h"
#include "core/session.h"
#include "test_util.h"

namespace semandaq::core {
namespace {

std::string Exec(Session* s, const std::string& cmd) {
  auto r = s->Execute(cmd);
  EXPECT_TRUE(r.ok()) << cmd << " -> " << r.status().ToString();
  return r.ok() ? *r : std::string();
}

TEST(SessionTest, HelpAndEmptyAndComments) {
  Session s;
  EXPECT_NE(Exec(&s, "help").find("commands:"), std::string::npos);
  EXPECT_EQ(Exec(&s, ""), "");
  EXPECT_EQ(Exec(&s, "   "), "");
  EXPECT_EQ(Exec(&s, "# a comment"), "");
}

TEST(SessionTest, UnknownCommandFails) {
  Session s;
  EXPECT_FALSE(s.Execute("frobnicate").ok());
}

TEST(SessionTest, GenLsShow) {
  Session s;
  EXPECT_NE(Exec(&s, "gen customer 50 10").find("generated customer"),
            std::string::npos);
  const std::string ls = Exec(&s, "ls");
  EXPECT_NE(ls.find("customer"), std::string::npos);
  EXPECT_NE(ls.find("customer_gold"), std::string::npos);
  EXPECT_NE(Exec(&s, "show customer 3").find("NAME"), std::string::npos);
  EXPECT_FALSE(s.Execute("show missing").ok());
}

TEST(SessionTest, FullPipeline) {
  Session s;
  Exec(&s, "gen customer 150 8");
  Exec(&s, "cfd customer: [CNT=UK, ZIP=_] -> [STR=_]");
  Exec(&s, "cfd customer: [CC] -> [CNT] { (44 | UK), (31 | NL), (1 | US) }");
  EXPECT_NE(Exec(&s, "cfds").find("[CC] -> [CNT]"), std::string::npos);
  EXPECT_NE(Exec(&s, "validate customer").find("SATISFIABLE"), std::string::npos);

  const std::string native = Exec(&s, "detect customer");
  const std::string sql = Exec(&s, "detect customer sql");
  EXPECT_EQ(native, sql);  // the two code paths agree verbatim

  EXPECT_NE(Exec(&s, "map customer 5").find("shade:"), std::string::npos);
  EXPECT_NE(Exec(&s, "report customer").find("Violation composition"),
            std::string::npos);
  EXPECT_NE(Exec(&s, "explore customer 0 0").find("-- CFDs --"), std::string::npos);

  // Clean is pending until applied.
  EXPECT_NE(Exec(&s, "clean customer").find("candidate repair"), std::string::npos);
  EXPECT_NE(Exec(&s, "diff").find("pending repair"), std::string::npos);
  EXPECT_NE(Exec(&s, "apply").find("applied"), std::string::npos);
  EXPECT_NE(Exec(&s, "detect customer").find("total vio 0"), std::string::npos);
}

TEST(SessionTest, DiffApplyRequirePendingRepair) {
  Session s;
  EXPECT_FALSE(s.Execute("diff").ok());
  EXPECT_FALSE(s.Execute("apply").ok());
}

TEST(SessionTest, SqlCommand) {
  Session s;
  Exec(&s, "gen hospital 80 5");
  const std::string out =
      Exec(&s, "sql SELECT STATE, COUNT(*) AS n FROM hospital GROUP BY STATE "
              "ORDER BY STATE");
  EXPECT_NE(out.find("STATE"), std::string::npos);
  EXPECT_NE(out.find("AL"), std::string::npos);
  EXPECT_FALSE(s.Execute("sql SELECT broken FROM nowhere").ok());
}

TEST(SessionTest, LoadCsvRoundTrip) {
  Session s;
  const std::string path = ::testing::TempDir() + "/session_load.csv";
  ASSERT_OK(common::WriteStringToFile(path, "A,B\nx,1\ny,2\n"));
  EXPECT_NE(Exec(&s, "load t " + path).find("loaded t"), std::string::npos);
  EXPECT_NE(Exec(&s, "show t").find("x"), std::string::npos);
  EXPECT_FALSE(s.Execute("load u /does/not/exist.csv").ok());
}

TEST(SessionTest, SaveOpenRoundTrip) {
  Session s;
  const std::string path = ::testing::TempDir() + "/session_snapshot.sdq";
  Exec(&s, "gen customer 200 8");
  Exec(&s, "cfd customer: [CNT=UK, ZIP=_] -> [STR=_]");
  Exec(&s, "cfd customer: [CC] -> [CNT] { (44 | UK), (31 | NL), (1 | US) }");
  const std::string before = Exec(&s, "detect customer");

  EXPECT_NE(Exec(&s, "save customer " + path).find("saved customer"),
            std::string::npos);
  EXPECT_NE(Exec(&s, "open customer2 " + path).find("opened customer2"),
            std::string::npos);
  Exec(&s, "cfd customer2: [CNT=UK, ZIP=_] -> [STR=_]");
  Exec(&s, "cfd customer2: [CC] -> [CNT] { (44 | UK), (31 | NL), (1 | US) }");
  // Detection over the reloaded snapshot renders identically.
  EXPECT_EQ(Exec(&s, "detect customer2"), before);

  EXPECT_FALSE(s.Execute("save customer").ok());
  EXPECT_FALSE(s.Execute("save missing " + path).ok());
  EXPECT_FALSE(s.Execute("open customer " + path).ok());  // name taken
  EXPECT_FALSE(s.Execute("open x /does/not/exist.sdq").ok());
}

TEST(SessionTest, BadArgumentsAreRejected) {
  Session s;
  EXPECT_FALSE(s.Execute("gen customer abc 5").ok());
  EXPECT_FALSE(s.Execute("gen martian 10 5").ok());
  EXPECT_FALSE(s.Execute("load onlyname").ok());
  EXPECT_FALSE(s.Execute("validate").ok());
  EXPECT_FALSE(s.Execute("cfd not a cfd").ok());
}

}  // namespace
}  // namespace semandaq::core
