// Loopback chaos for the hardened TCP front end (src/server/tcp_server):
// stalled clients are disconnected at the read deadline instead of pinning
// a thread forever, connections past the cap are shed with a clean busy
// frame, handler threads and fds are reclaimed as churn runs (counted via
// /proc/self), and the retrying client rides through busy-shedding to an
// eventual answer.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/service.h"
#include "server/tcp_server.h"
#include "test_util.h"

namespace semandaq::server {
namespace {

using common::StatusCode;

/// A raw loopback connection (no Client conveniences): the tool for
/// playing a stalled, half-framed, or vanishing peer.
int RawConnect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

size_t CountDirEntries(const char* dir) {
  size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++n;
  }
  return n;
}

size_t OpenFdCount() { return CountDirEntries("/proc/self/fd"); }
size_t ThreadCount() { return CountDirEntries("/proc/self/task"); }

/// Polls until the server has no open connections (handlers observed the
/// disconnects) or the timeout passes.
void AwaitQuiesce(TcpServer& server, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (server.active_connections() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.active_connections(), 0u);
}

TEST(ServerChaosTest, StalledClientIsDisconnectedAtTheReadDeadline) {
  SemandaqService service;
  TcpServerOptions options;
  options.read_deadline_ms = 150;
  TcpServer server(&service, options);
  ASSERT_OK(server.Start());

  const int fd = RawConnect(server.port());
  ASSERT_GE(fd, 0);
  // Send nothing. The server owes us a courtesy frame naming the timeout,
  // then the close that reclaims its handler thread.
  std::string payload;
  ASSERT_OK_AND_ASSIGN(bool got, ReadFrame(fd, &payload, /*deadline_ms=*/5000));
  ASSERT_TRUE(got);
  ASSERT_OK_AND_ASSIGN(WireResponse resp, DecodeResponse(payload));
  EXPECT_FALSE(resp.ok);
  EXPECT_NE(resp.text.find("idle connection timed out"), std::string::npos);
  ASSERT_OK_AND_ASSIGN(bool eof, ReadFrame(fd, &payload, /*deadline_ms=*/5000));
  EXPECT_FALSE(eof);
  ::close(fd);

  AwaitQuiesce(server);
  server.Shutdown();
  server.Wait();
}

TEST(ServerChaosTest, MidFrameStallIsDisconnectedTheSameWay) {
  SemandaqService service;
  TcpServerOptions options;
  options.read_deadline_ms = 150;
  TcpServer server(&service, options);
  ASSERT_OK(server.Start());

  const int fd = RawConnect(server.port());
  ASSERT_GE(fd, 0);
  const uint32_t len = 64;  // promise 64 bytes...
  ASSERT_EQ(::send(fd, &len, sizeof len, MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof len));
  ASSERT_EQ(::send(fd, "det", 3, MSG_NOSIGNAL), 3);  // ...deliver 3, stall
  std::string payload;
  ASSERT_OK_AND_ASSIGN(bool got, ReadFrame(fd, &payload, /*deadline_ms=*/5000));
  ASSERT_TRUE(got);
  ASSERT_OK_AND_ASSIGN(WireResponse resp, DecodeResponse(payload));
  EXPECT_FALSE(resp.ok);
  ::close(fd);

  AwaitQuiesce(server);
  server.Shutdown();
  server.Wait();
}

TEST(ServerChaosTest, ConnectionsPastTheCapAreShedWithABusyFrame) {
  SemandaqService service;
  TcpServerOptions options;
  options.max_connections = 2;
  TcpServer server(&service, options);
  ASSERT_OK(server.Start());

  ASSERT_OK_AND_ASSIGN(Client a, Client::Connect("127.0.0.1", server.port()));
  ASSERT_OK_AND_ASSIGN(auto ra, a.Call("ls"));  // a is accepted + registered
  EXPECT_TRUE(ra.ok);
  ASSERT_OK_AND_ASSIGN(Client b, Client::Connect("127.0.0.1", server.port()));
  ASSERT_OK_AND_ASSIGN(auto rb, b.Call("ls"));
  EXPECT_TRUE(rb.ok);

  // The third connection completes at TCP level (listen backlog) but gets
  // one clean busy frame and a close — not a hang, not a silent RST. The
  // frame is sent proactively at accept, so read it without writing first:
  // a request racing the server's close can draw an RST that discards the
  // buffered frame (CallIdempotent retries that case either way).
  const int shed_fd = RawConnect(server.port());
  ASSERT_GE(shed_fd, 0);
  std::string shed_payload;
  ASSERT_OK_AND_ASSIGN(bool shed_got,
                       ReadFrame(shed_fd, &shed_payload, /*deadline_ms=*/5000));
  ASSERT_TRUE(shed_got);
  ASSERT_OK_AND_ASSIGN(WireResponse rc, DecodeResponse(shed_payload));
  EXPECT_FALSE(rc.ok);
  EXPECT_EQ(rc.text.rfind("Unavailable:", 0), 0u) << rc.text;
  ::close(shed_fd);
  EXPECT_GE(server.connections_shed(), 1u);

  // Capacity comes back as soon as a slot frees.
  { Client drop = std::move(a); }  // destructor closes a's connection
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool recovered = false;
  while (!recovered && std::chrono::steady_clock::now() < deadline) {
    auto d = Client::Connect("127.0.0.1", server.port());
    if (d.ok()) {
      auto rd = d->Call("ls");
      recovered = rd.ok() && rd->ok;
    }
    if (!recovered) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(recovered);

  server.Shutdown();
  server.Wait();
}

TEST(ServerChaosTest, ConnectionChurnLeaksNoFdsOrThreads) {
  SemandaqService service;
  TcpServerOptions options;
  options.read_deadline_ms = 250;
  TcpServer server(&service, options);
  ASSERT_OK(server.Start());
  {
    ASSERT_OK_AND_ASSIGN(Client boot,
                         Client::Connect("127.0.0.1", server.port()));
    ASSERT_OK_AND_ASSIGN(auto r, boot.Call("gen customer 40 10"));
    EXPECT_TRUE(r.ok);
  }
  AwaitQuiesce(server);
  const size_t fd_baseline = OpenFdCount();
  const size_t thread_baseline = ThreadCount();

  for (int i = 0; i < 45; ++i) {
    switch (i % 3) {
      case 0: {
        // A well-behaved client: one command, clean close.
        auto c = Client::Connect("127.0.0.1", server.port());
        ASSERT_TRUE(c.ok()) << c.status().ToString();
        auto r = c->Call("detect customer");
        EXPECT_TRUE(r.ok()) << r.status().ToString();
        break;
      }
      case 1: {
        // A mid-frame vanisher: promises a body, disconnects instead.
        const int fd = RawConnect(server.port());
        ASSERT_GE(fd, 0);
        const uint32_t len = 100;
        (void)::send(fd, &len, sizeof len, MSG_NOSIGNAL);
        ::close(fd);
        break;
      }
      default: {
        // Connect-and-run: never sends a byte.
        const int fd = RawConnect(server.port());
        ASSERT_GE(fd, 0);
        ::close(fd);
        break;
      }
    }
  }

  AwaitQuiesce(server);
  // One more clean call makes the accept loop run and reap the finished
  // handler threads from the churn above.
  {
    auto c = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(c.ok());
    (void)c->Call("ls");
  }
  AwaitQuiesce(server);

  // Slack covers transient races (a handler between close and reap, proc
  // enumeration itself) — what must NOT appear is growth proportional to
  // the 45 churned connections.
  EXPECT_LE(OpenFdCount(), fd_baseline + 4)
      << "fd leak across connection churn";
  EXPECT_LE(ThreadCount(), thread_baseline + 4)
      << "thread leak across connection churn";

  server.Shutdown();
  server.Wait();
  EXPECT_EQ(server.active_connections(), 0u);
}

TEST(ServerChaosTest, StalledClientsDoNotStarveHealthyOnes) {
  SemandaqService service;
  TcpServerOptions options;
  options.read_deadline_ms = 300;
  TcpServer server(&service, options);
  ASSERT_OK(server.Start());
  {
    ASSERT_OK_AND_ASSIGN(Client boot,
                         Client::Connect("127.0.0.1", server.port()));
    ASSERT_OK_AND_ASSIGN(auto r, boot.Call("gen hospital 120 5"));
    EXPECT_TRUE(r.ok);
  }

  // Four stalled connections camp on their handler threads...
  std::vector<int> stalled;
  for (int i = 0; i < 4; ++i) {
    const int fd = RawConnect(server.port());
    ASSERT_GE(fd, 0);
    stalled.push_back(fd);
  }
  // ...while healthy clients keep getting identical answers.
  std::string first;
  for (int round = 0; round < 6; ++round) {
    ASSERT_OK_AND_ASSIGN(Client c, Client::Connect("127.0.0.1", server.port()));
    ASSERT_OK_AND_ASSIGN(auto r, c.Call("detect hospital"));
    ASSERT_TRUE(r.ok) << r.text;
    if (round == 0) {
      first = r.text;
    } else {
      EXPECT_EQ(r.text, first);
    }
  }
  for (int fd : stalled) ::close(fd);

  AwaitQuiesce(server);
  server.Shutdown();
  server.Wait();
}

TEST(ServerChaosTest, RetryingClientRidesThroughBusyShedding) {
  SemandaqService service;
  TcpServerOptions options;
  options.max_connections = 1;
  TcpServer server(&service, options);
  ASSERT_OK(server.Start());

  // `holder` owns the single slot and seeds the relation the retrier asks
  // about.
  std::optional<Client> holder;
  {
    auto connected = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(connected.ok());
    holder.emplace(std::move(*connected));
  }
  ASSERT_OK_AND_ASSIGN(auto seeded, holder->Call("gen customer 40 10"));
  EXPECT_TRUE(seeded.ok);

  ClientOptions retrying;
  retrying.max_retries = 12;
  retrying.backoff_initial_ms = 25;
  retrying.backoff_max_ms = 100;
  retrying.backoff_seed = 7;
  ASSERT_OK_AND_ASSIGN(
      Client b, Client::Connect("127.0.0.1", server.port(), retrying));

  // Free the slot while b is mid-backoff: its busy refusals turn into a
  // reconnect and a real answer.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    holder.reset();
  });
  ASSERT_OK_AND_ASSIGN(WireResponse resp, b.CallIdempotent("epoch customer"));
  releaser.join();
  EXPECT_TRUE(resp.ok) << resp.text;
  EXPECT_EQ(resp.text, "epoch 1\n");
  EXPECT_GE(b.reconnects(), 1u);

  server.Shutdown();
  server.Wait();
}

TEST(ServerChaosTest, SlowQueryStormKeepsCheapTrafficAndTheServerAlive) {
  // The overload scenario admission control exists for: a storm of
  // expensive mines — some with tight server-side deadlines, some
  // cancelled mid-flight, some left to finish — while cheap traffic keeps
  // arriving. Every response must be a well-formed member of the status
  // alphabet, cheap requests must keep succeeding throughout, and the
  // server must come out healthy (this test doubles as the TSan
  // interleaving workload for the watchdog + admission + token paths).
  ServiceOptions service_options;
  service_options.scheduler_lanes = 4;
  service_options.admission.enabled = true;
  service_options.admission.max_expensive = 1;
  service_options.admission.queue_limit_expensive = 1;
  service_options.admission.retry_after_ms = 20;
  SemandaqService service(service_options);
  TcpServer server(&service);
  ASSERT_OK(server.Start());

  {
    auto seeder = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(seeder.ok());
    ASSERT_OK_AND_ASSIGN(auto seeded, seeder->Call("gen customer 30000 10"));
    EXPECT_TRUE(seeded.ok) << seeded.text;
  }

  constexpr int kMiners = 6;
  constexpr int kCheapWorkers = 3;
  std::atomic<int> malformed{0};
  std::atomic<int> cheap_failures{0};
  std::atomic<int> cheap_successes{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int m = 0; m < kMiners; ++m) {
    threads.emplace_back([&, m] {
      auto client = Client::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        ++malformed;
        return;
      }
      common::Result<WireResponse> resp = common::Status::Internal("unset");
      if (m % 3 == 0) {
        // Tight server-side deadline: expires mid-sweep.
        resp = client->CallWithDeadline("mine customer", 40);
      } else if (m % 3 == 1) {
        // Client-initiated cancel mid-flight.
        std::thread canceller([&client] {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
          (void)client->SendCancel();
        });
        resp = client->Call("mine customer");
        canceller.join();
      } else {
        resp = client->Call("mine customer");
      }
      if (!resp.ok()) {
        ++malformed;  // transport failures are not part of this storm
        return;
      }
      switch (resp->status) {
        case WireStatus::kOk:
        case WireStatus::kCancelled:
        case WireStatus::kDeadlineExceeded:
          break;
        case WireStatus::kBusy:
          if (resp->retry_after_ms == 0) ++malformed;  // hint is mandatory
          break;
        default:
          ++malformed;
      }
    });
  }
  for (int c = 0; c < kCheapWorkers; ++c) {
    threads.emplace_back([&] {
      ClientOptions retrying;
      retrying.max_retries = 20;
      retrying.backoff_initial_ms = 10;
      retrying.backoff_max_ms = 50;
      auto client = Client::Connect("127.0.0.1", server.port(), retrying);
      if (!client.ok()) {
        ++cheap_failures;
        return;
      }
      while (!stop.load(std::memory_order_relaxed)) {
        auto resp = client->CallIdempotent("epoch customer");
        if (resp.ok() && resp->ok) {
          ++cheap_successes;
        } else {
          ++cheap_failures;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }

  // Let the storm rage for a fixed window, then stop the cheap loops once
  // the miners are done.
  for (int m = 0; m < kMiners; ++m) threads[m].join();
  stop.store(true, std::memory_order_relaxed);
  for (size_t i = kMiners; i < threads.size(); ++i) threads[i].join();

  EXPECT_EQ(malformed.load(), 0);
  EXPECT_EQ(cheap_failures.load(), 0);
  EXPECT_GT(cheap_successes.load(), 0);

  // The server is intact: a fresh connection gets real answers and the
  // stats surface still renders.
  {
    auto after = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(after.ok());
    ASSERT_OK_AND_ASSIGN(WireResponse stats, after->Call("stats"));
    EXPECT_TRUE(stats.ok);
    EXPECT_NE(stats.text.find("admission.enabled=1"), std::string::npos);
  }
  AwaitQuiesce(server, 5000);

  server.Shutdown();
  server.Wait();
}

}  // namespace
}  // namespace semandaq::server
