#include <gtest/gtest.h>

#include "cfd/cfd_parser.h"
#include "detect/native_detector.h"
#include "monitor/data_monitor.h"
#include "test_util.h"

namespace semandaq::monitor {
namespace {

using relational::Relation;
using relational::Row;
using relational::TupleId;
using relational::Update;
using relational::Value;

std::vector<cfd::Cfd> Parse(const std::string& text) {
  auto r = cfd::ParseCfdSet(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(*r) : std::vector<cfd::Cfd>{};
}

Row CleanUkRow(const char* name) {
  return {Value::String(name), Value::String("UK"), Value::String("Edi"),
          Value::String("EH1"), Value::String("HighSt"), Value::String("44"),
          Value::String("131")};
}

class DataMonitorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rel_ = semandaq::testing::MakeStringRelation(
        "customer", {"NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"},
        {{"A", "UK", "Edi", "EH1", "HighSt", "44", "131"},
         {"B", "UK", "Edi", "EH1", "HighSt", "44", "131"}});
    cfds_ = Parse(semandaq::testing::PaperCfdText());
  }

  Relation rel_;
  std::vector<cfd::Cfd> cfds_;
};

TEST_F(DataMonitorTest, RequiresStart) {
  repair::CostModel cm(rel_.schema());
  DataMonitor monitor(&rel_, cfds_, cm);
  EXPECT_FALSE(monitor.OnUpdate({}).ok());
}

TEST_F(DataMonitorTest, DetectModeFlagsButDoesNotFix) {
  repair::CostModel cm(rel_.schema());
  DataMonitor monitor(&rel_, cfds_, cm);
  ASSERT_OK(monitor.Start());
  EXPECT_FALSE(monitor.cleansed());

  Row bad = CleanUkRow("C");
  bad[4] = Value::String("WrongSt");
  ASSERT_OK_AND_ASSIGN(MonitorReport report, monitor.OnUpdate({Update::Insert(bad)}));
  EXPECT_GT(report.total_vio, 0);
  EXPECT_TRUE(report.repairs_applied.empty());
  // The bad value is still there: mode (1) only detects.
  EXPECT_EQ(rel_.cell(2, 4).AsString(), "WrongSt");
}

TEST_F(DataMonitorTest, RepairModeFixesTheDelta) {
  repair::CostModel cm(rel_.schema());
  DataMonitor monitor(&rel_, cfds_, cm);
  ASSERT_OK(monitor.Start());
  monitor.MarkCleansed();

  Row bad = CleanUkRow("C");
  bad[4] = Value::String("WrongSt");
  ASSERT_OK_AND_ASSIGN(MonitorReport report, monitor.OnUpdate({Update::Insert(bad)}));
  EXPECT_EQ(report.total_vio, 0);
  EXPECT_FALSE(report.repairs_applied.empty());
  // The live relation was fixed to the established street.
  EXPECT_EQ(rel_.cell(2, 4).AsString(), "HighSt");
  // Old tuples untouched.
  EXPECT_EQ(rel_.cell(0, 4).AsString(), "HighSt");
}

TEST_F(DataMonitorTest, RepairModeFixesConstantViolation) {
  repair::CostModel cm(rel_.schema());
  DataMonitor monitor(&rel_, cfds_, cm);
  ASSERT_OK(monitor.Start());
  monitor.MarkCleansed();

  // CC=44 with CNT=US: the constant CFD forces CNT := UK.
  Row bad = {Value::String("D"), Value::String("US"), Value::String("NY"),
             Value::String("10011"), Value::String("Broadway"),
             Value::String("44"), Value::String("212")};
  ASSERT_OK_AND_ASSIGN(MonitorReport report, monitor.OnUpdate({Update::Insert(bad)}));
  EXPECT_EQ(report.total_vio, 0);
  EXPECT_EQ(rel_.cell(2, 1).AsString(), "UK");
}

TEST_F(DataMonitorTest, CleanUpdatesPassThroughBothModes) {
  repair::CostModel cm(rel_.schema());
  DataMonitor monitor(&rel_, cfds_, cm);
  ASSERT_OK(monitor.Start());

  ASSERT_OK_AND_ASSIGN(MonitorReport r1,
                       monitor.OnUpdate({Update::Insert(CleanUkRow("C"))}));
  EXPECT_EQ(r1.total_vio, 0);
  monitor.MarkCleansed();
  ASSERT_OK_AND_ASSIGN(MonitorReport r2,
                       monitor.OnUpdate({Update::Insert(CleanUkRow("D"))}));
  EXPECT_EQ(r2.total_vio, 0);
  EXPECT_TRUE(r2.repairs_applied.empty());
  EXPECT_EQ(rel_.size(), 4u);
}

TEST_F(DataMonitorTest, MonitorStateTracksLiveRelation) {
  repair::CostModel cm(rel_.schema());
  DataMonitor monitor(&rel_, cfds_, cm);
  ASSERT_OK(monitor.Start());
  monitor.MarkCleansed();

  // Three batches in sequence; after each, the relation must satisfy Σ and
  // the monitor's view must match a fresh detection.
  for (int round = 0; round < 3; ++round) {
    Row bad = CleanUkRow(("R" + std::to_string(round)).c_str());
    bad[4] = Value::String("Wrong" + std::to_string(round));
    ASSERT_OK_AND_ASSIGN(MonitorReport report,
                         monitor.OnUpdate({Update::Insert(bad)}));
    EXPECT_EQ(report.total_vio, 0);
    detect::NativeDetector fresh(&rel_, cfds_);
    ASSERT_OK_AND_ASSIGN(auto table, fresh.Detect());
    EXPECT_EQ(table.TotalVio(), 0);
  }
}

TEST_F(DataMonitorTest, DeleteUpdatesHandled) {
  repair::CostModel cm(rel_.schema());
  DataMonitor monitor(&rel_, cfds_, cm);
  ASSERT_OK(monitor.Start());
  ASSERT_OK_AND_ASSIGN(MonitorReport report,
                       monitor.OnUpdate({Update::DeleteTuple(0)}));
  EXPECT_EQ(report.total_vio, 0);
  EXPECT_EQ(rel_.size(), 1u);
}

}  // namespace
}  // namespace semandaq::monitor
