// Property tests for the SQL substrate: on randomized relations, executor
// results must agree with a naive reference evaluation done in the test
// (independent code path, no shared logic with the engine).

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "relational/database.h"
#include "sql/engine.h"
#include "test_util.h"

namespace semandaq::sql {
namespace {

using relational::Database;
using relational::Relation;
using relational::Row;
using relational::Schema;
using relational::TupleId;
using relational::Value;

/// Random relation R(A, B, C) with small value domains (to force duplicate
/// keys, group collisions, and NULLs).
Relation RandomRelation(common::Rng* rng, size_t rows) {
  Relation rel{"r", Schema::AllStrings({"A", "B", "C"})};
  for (size_t i = 0; i < rows; ++i) {
    auto cell = [&](int domain) {
      if (rng->NextBool(0.1)) return Value::Null();
      return Value::String(std::string(1, static_cast<char>('a' + rng->NextBelow(
                                                                 domain))));
    };
    rel.MustInsert({cell(4), cell(3), cell(5)});
  }
  return rel;
}

class SqlProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SqlProperty, FilterEqualsReference) {
  common::Rng rng(GetParam());
  Database db;
  ASSERT_OK(db.AddRelation(RandomRelation(&rng, 200)));
  const Relation* rel = db.FindRelation("r");
  Engine engine(&db);

  ASSERT_OK_AND_ASSIGN(Relation got,
                       engine.Query("SELECT __tid FROM r WHERE A = 'a' AND "
                                    "(B = 'b' OR C IS NULL)"));
  std::set<TupleId> got_ids;
  got.ForEach([&](TupleId, const Row& row) { got_ids.insert(row[0].AsInt()); });

  std::set<TupleId> want_ids;
  rel->ForEach([&](TupleId tid, const Row& row) {
    const bool a = !row[0].is_null() && row[0].AsString() == "a";
    const bool b = !row[1].is_null() && row[1].AsString() == "b";
    const bool c_null = row[2].is_null();
    if (a && (b || c_null)) want_ids.insert(tid);
  });
  EXPECT_EQ(got_ids, want_ids);
}

TEST_P(SqlProperty, GroupCountEqualsReference) {
  common::Rng rng(GetParam() ^ 0xABCD);
  Database db;
  ASSERT_OK(db.AddRelation(RandomRelation(&rng, 300)));
  const Relation* rel = db.FindRelation("r");
  Engine engine(&db);

  ASSERT_OK_AND_ASSIGN(
      Relation got,
      engine.Query("SELECT A, COUNT(*) AS n, COUNT(DISTINCT B) AS d FROM r "
                   "WHERE A IS NOT NULL GROUP BY A"));

  std::map<std::string, std::pair<int64_t, std::set<std::string>>> want;
  rel->ForEach([&](TupleId, const Row& row) {
    if (row[0].is_null()) return;
    auto& slot = want[row[0].AsString()];
    ++slot.first;
    if (!row[1].is_null()) slot.second.insert(row[1].AsString());
  });

  EXPECT_EQ(got.size(), want.size());
  got.ForEach([&](TupleId, const Row& row) {
    auto it = want.find(row[0].AsString());
    ASSERT_NE(it, want.end());
    EXPECT_EQ(row[1].AsInt(), it->second.first);
    EXPECT_EQ(row[2].AsInt(), static_cast<int64_t>(it->second.second.size()));
  });
}

TEST_P(SqlProperty, JoinEqualsReference) {
  common::Rng rng(GetParam() ^ 0x1234);
  Database db;
  ASSERT_OK(db.AddRelation(RandomRelation(&rng, 120)));
  // Second relation S(K, V) joining on r.A = s.K.
  Relation s{"s", Schema::AllStrings({"K", "V"})};
  for (size_t i = 0; i < 40; ++i) {
    s.MustInsert({rng.NextBool(0.1)
                      ? Value::Null()
                      : Value::String(std::string(1, static_cast<char>(
                                                         'a' + rng.NextBelow(5)))),
                  Value::String(std::to_string(i))});
  }
  ASSERT_OK(db.AddRelation(std::move(s)));
  const Relation* r = db.FindRelation("r");
  const Relation* s2 = db.FindRelation("s");
  Engine engine(&db);

  ASSERT_OK_AND_ASSIGN(
      Relation got,
      engine.Query("SELECT COUNT(*) FROM r, s WHERE r.A = s.K"));

  int64_t want = 0;
  r->ForEach([&](TupleId, const Row& rr) {
    if (rr[0].is_null()) return;
    s2->ForEach([&](TupleId, const Row& sr) {
      if (sr[0].is_null()) return;
      if (rr[0] == sr[0]) ++want;
    });
  });
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got.cell(0, 0).AsInt(), want);
}

TEST_P(SqlProperty, OrderByIsTotalAndStable) {
  common::Rng rng(GetParam() ^ 0x77);
  Database db;
  ASSERT_OK(db.AddRelation(RandomRelation(&rng, 150)));
  Engine engine(&db);
  ASSERT_OK_AND_ASSIGN(Relation got,
                       engine.Query("SELECT A, B FROM r ORDER BY A, B DESC"));
  // Verify the ordering invariant pairwise.
  Row prev;
  bool first = true;
  got.ForEach([&](TupleId, const Row& row) {
    if (!first) {
      const int ca = prev[0].Compare(row[0]);
      EXPECT_LE(ca, 0);
      if (ca == 0) {
        EXPECT_GE(prev[1].Compare(row[1]), 0);  // DESC on B
      }
    }
    prev = row;
    first = false;
  });
  EXPECT_EQ(got.size(), 150u);
}

TEST_P(SqlProperty, DistinctMatchesSetSemantics) {
  common::Rng rng(GetParam() ^ 0x3141);
  Database db;
  ASSERT_OK(db.AddRelation(RandomRelation(&rng, 250)));
  const Relation* rel = db.FindRelation("r");
  Engine engine(&db);
  ASSERT_OK_AND_ASSIGN(Relation got, engine.Query("SELECT DISTINCT A, B FROM r"));
  std::set<std::pair<std::string, std::string>> want;
  rel->ForEach([&](TupleId, const Row& row) {
    want.emplace(row[0].ToDisplayString(), row[1].ToDisplayString());
  });
  EXPECT_EQ(got.size(), want.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace semandaq::sql
