// The COW column-chunk layer (src/relational/column_chunk): frozen shares
// must be bit-stable forever — writer appends land past their size, writer
// overwrites detach first — copies must keep plain value semantics, and
// the shared row hydrator must decode exactly the rows that were encoded.
// These invariants are the foundation of the server's lock-free epoch
// publication (docs/server.md), so they are tested directly here in
// isolation from the server.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "relational/column_chunk.h"
#include "relational/dictionary.h"
#include "relational/value.h"
#include "test_util.h"

namespace semandaq::relational {
namespace {

std::vector<Code> Contents(const CodeColumn& c) {
  return std::vector<Code>(c.begin(), c.end());
}

TEST(CodeColumnTest, PushBackAndRead) {
  CodeColumn col;
  EXPECT_TRUE(col.empty());
  for (Code c = 1; c <= 100; ++c) col.PushBack(c);
  ASSERT_EQ(col.size(), 100u);
  for (size_t i = 0; i < col.size(); ++i) {
    EXPECT_EQ(col[i], static_cast<Code>(i + 1));
  }
  // Contiguity: the read surface is one flat array.
  EXPECT_EQ(col.end() - col.begin(), 100);
}

TEST(CodeColumnTest, FrozenShareSurvivesAppends) {
  CodeColumn col;
  for (Code c = 0; c < 10; ++c) col.PushBack(c);
  const CodeColumn frozen = col.ShareFrozen();
  ASSERT_EQ(frozen.size(), 10u);

  // Appends past the frozen size must not relocate away from the shared
  // chunk (zero-copy append) until capacity forces growth...
  col.PushBack(10);
  EXPECT_EQ(col.size(), 11u);
  EXPECT_EQ(frozen.size(), 10u);
  // ...and must never disturb the frozen prefix, growth included.
  for (Code c = 11; c < 5000; ++c) col.PushBack(c);
  EXPECT_EQ(col.size(), 5000u);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(frozen[i], static_cast<Code>(i));
}

TEST(CodeColumnTest, FrozenShareSurvivesOverwrites) {
  CodeColumn col;
  for (Code c = 0; c < 8; ++c) col.PushBack(c);
  const CodeColumn frozen = col.ShareFrozen();
  EXPECT_EQ(col.chunk_use_count(), 2);

  // An overwrite below the watermark must detach (COW): the writer sees
  // the new byte, the frozen view keeps the old one.
  col.Set(3, 999);
  EXPECT_EQ(col[3], 999u);
  EXPECT_EQ(frozen[3], 3u);
  EXPECT_EQ(frozen.chunk_use_count(), 1);  // writer moved to a clone

  // After the detach the writer owns its chunk again: further overwrites
  // are in place (no second clone).
  const Code* data_after_detach = col.data();
  col.Set(4, 888);
  EXPECT_EQ(col.data(), data_after_detach);
  EXPECT_EQ(col[4], 888u);
}

TEST(CodeColumnTest, AppendsPastWatermarkStayInPlace) {
  CodeColumn col;
  for (Code c = 0; c < 4; ++c) col.PushBack(c);
  const CodeColumn frozen = col.ShareFrozen();
  col.PushBack(4);
  // Setting an index the frozen view cannot see needs no COW.
  const long shared_count = col.chunk_use_count();
  col.Set(4, 777);
  EXPECT_EQ(col.chunk_use_count(), shared_count);
  EXPECT_EQ(col[4], 777u);
  EXPECT_EQ(frozen.size(), 4u);
}

TEST(CodeColumnTest, CopyHasValueSemantics) {
  CodeColumn a;
  for (Code c = 0; c < 6; ++c) a.PushBack(c);
  CodeColumn b = a;  // O(1): shares the chunk copy-on-write
  EXPECT_EQ(a.chunk_use_count(), 2);
  EXPECT_EQ(Contents(a), Contents(b));

  // Either side mutating must not leak into the other.
  b.Set(0, 100);
  EXPECT_EQ(a[0], 0u);
  EXPECT_EQ(b[0], 100u);
  a.Set(1, 200);
  EXPECT_EQ(a[1], 200u);
  EXPECT_EQ(b[1], 1u);

  // The copy does not own the shared tail: its first append relocates
  // instead of scribbling past the original's size.
  CodeColumn c = a;
  c.PushBack(42);
  EXPECT_EQ(a.size(), 6u);
  EXPECT_EQ(c.size(), 7u);
  EXPECT_EQ(c[6], 42u);
  EXPECT_EQ(Contents(a), (std::vector<Code>{0, 200, 2, 3, 4, 5}));
}

TEST(CodeColumnTest, CopyAssignReleasesOldChunk) {
  CodeColumn a;
  a.PushBack(1);
  CodeColumn b;
  b.PushBack(2);
  b = a;
  EXPECT_EQ(a.chunk_use_count(), 2);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0], 1u);
  b.PushBack(5);  // relocates: b never owned a's tail
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 2u);
}

TEST(CodeColumnTest, AssignAndAssignFillDetachFromShares) {
  CodeColumn col;
  for (Code c = 0; c < 5; ++c) col.PushBack(c);
  const CodeColumn frozen = col.ShareFrozen();

  const std::vector<Code> src = {9, 8, 7};
  col.Assign(src.data(), src.size());
  EXPECT_EQ(Contents(col), src);
  EXPECT_EQ(frozen.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(frozen[i], static_cast<Code>(i));

  const CodeColumn frozen2 = col.ShareFrozen();
  col.AssignFill(4, 11);
  EXPECT_EQ(Contents(col), std::vector<Code>(4, 11));
  EXPECT_EQ(Contents(frozen2), src);
}

TEST(CodeColumnTest, ExtendFillAppendsInPlace) {
  CodeColumn col;
  col.PushBack(1);
  const CodeColumn frozen = col.ShareFrozen();
  col.ExtendFill(6, 3);
  EXPECT_EQ(Contents(col), (std::vector<Code>{1, 3, 3, 3, 3, 3}));
  col.ExtendFill(2, 4);  // n <= size: no-op
  EXPECT_EQ(col.size(), 6u);
  EXPECT_EQ(frozen.size(), 1u);
  EXPECT_EQ(frozen[0], 1u);
}

TEST(CodeColumnTest, EqualityComparesLogicalContents) {
  CodeColumn a;
  CodeColumn b;
  for (Code c = 0; c < 3; ++c) {
    a.PushBack(c);
    b.PushBack(c);
  }
  EXPECT_EQ(a, b);
  b.PushBack(3);
  EXPECT_NE(a, b);
  // A frozen share equals its source at the shared prefix length.
  EXPECT_EQ(a.ShareFrozen(), a);
}

TEST(CodeColumnTest, DecodeRowsFromColumnsRoundTrips) {
  // Two columns over shared dictionaries, one dead row in the middle.
  auto dict0 = std::make_shared<Dictionary>();
  auto dict1 = std::make_shared<Dictionary>();
  std::vector<std::vector<Value>> rows = {
      {Value::String("a"), Value::String("x")},
      {Value::String("b"), Value::Null()},
      {Value::String("a"), Value::String("y")},
  };
  std::vector<CodeColumn> columns(2);
  for (const auto& row : rows) {
    columns[0].PushBack(dict0->Encode(row[0]));
    columns[1].PushBack(dict1->Encode(row[1]));
  }
  const std::vector<uint8_t> live = {1, 0, 1};

  const std::vector<Row> decoded =
      DecodeRowsFromColumns({dict0, dict1}, columns, live);
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[0], rows[0]);
  EXPECT_TRUE(decoded[1].empty());  // dead id: placeholder row
  EXPECT_EQ(decoded[2], rows[2]);

  // Decoding from a frozen share of the columns yields the same rows —
  // the server's snapshot hydrator path.
  std::vector<CodeColumn> frozen;
  frozen.push_back(columns[0].ShareFrozen());
  frozen.push_back(columns[1].ShareFrozen());
  EXPECT_EQ(DecodeRowsFromColumns({dict0, dict1}, frozen, live), decoded);
}

}  // namespace
}  // namespace semandaq::relational
