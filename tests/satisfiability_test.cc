#include <gtest/gtest.h>

#include "cfd/cfd_parser.h"
#include "cfd/satisfiability.h"
#include "test_util.h"

namespace semandaq::cfd {
namespace {

using relational::DataType;
using relational::Schema;
using relational::Value;

std::vector<Cfd> Parse(const std::string& text) {
  auto r = ParseCfdSet(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(*r) : std::vector<Cfd>{};
}

class SatisfiabilityTest : public ::testing::Test {
 protected:
  Schema schema_ = Schema::AllStrings({"A", "B", "C"});
};

TEST_F(SatisfiabilityTest, EmptySetIsSatisfiable) {
  SatisfiabilityChecker checker(schema_);
  ASSERT_OK_AND_ASSIGN(auto report, checker.Check({}));
  EXPECT_TRUE(report.satisfiable);
}

TEST_F(SatisfiabilityTest, SingleConstantCfdSatisfiable) {
  SatisfiabilityChecker checker(schema_);
  ASSERT_OK_AND_ASSIGN(auto report, checker.Check(Parse("t: [A=1] -> [B=2]")));
  EXPECT_TRUE(report.satisfiable);
  EXPECT_FALSE(report.witness.empty());
}

TEST_F(SatisfiabilityTest, DirectContradictionUnsatisfiable) {
  // Both CFDs apply to every tuple (wildcard LHS) and force different
  // constants on B: no tuple can satisfy both.
  SatisfiabilityChecker checker(schema_);
  ASSERT_OK_AND_ASSIGN(auto report, checker.Check(Parse("t: [A=_] -> [B=1]\n"
                                                        "t: [A=_] -> [B=2]\n")));
  EXPECT_FALSE(report.satisfiable);
  ASSERT_FALSE(report.conflicting_pairs.empty());
  EXPECT_EQ(report.conflicting_pairs.front(), (std::pair<size_t, size_t>{0, 1}));
}

TEST_F(SatisfiabilityTest, EscapableContradictionSatisfiable) {
  // Conflicting constants guarded by A=1: a tuple with A != 1 satisfies Σ.
  SatisfiabilityChecker checker(schema_);
  ASSERT_OK_AND_ASSIGN(auto report, checker.Check(Parse("t: [A=1] -> [B=1]\n"
                                                        "t: [A=1] -> [B=2]\n")));
  EXPECT_TRUE(report.satisfiable);
}

TEST_F(SatisfiabilityTest, ChainedPropagationUnsatisfiable) {
  // A=_ forces B=1; B=1 forces C=1; C=1 forces B=2 — a three-CFD conflict
  // with no two-CFD core. Hmm: check that detection still works when the
  // core needs all three.
  SatisfiabilityChecker checker(schema_);
  ASSERT_OK_AND_ASSIGN(auto report, checker.Check(Parse("t: [A=_] -> [B=1]\n"
                                                        "t: [B=1] -> [C=1]\n"
                                                        "t: [C=1] -> [B=2]\n")));
  EXPECT_FALSE(report.satisfiable);
}

TEST_F(SatisfiabilityTest, FreshValueEscapesConstants) {
  // [A=_] -> [B=1] plus [B=2] -> [C=3]: B must be 1 everywhere, so the
  // second CFD never fires; satisfiable.
  SatisfiabilityChecker checker(schema_);
  ASSERT_OK_AND_ASSIGN(auto report, checker.Check(Parse("t: [A=_] -> [B=1]\n"
                                                        "t: [B=2] -> [C=3]\n")));
  EXPECT_TRUE(report.satisfiable);
}

TEST(SatisfiabilityFiniteDomainTest, FiniteDomainForcesConflict) {
  // FLAG has domain {Y, N}. [FLAG=Y] -> [B=1], [FLAG=N] -> [B=2],
  // [A=_] -> [B=3]: whatever FLAG is, B must be 1 or 2, but also 3.
  Schema schema;
  ASSERT_OK(schema.AddAttribute({"FLAG", DataType::kString,
                                 {Value::String("Y"), Value::String("N")}}));
  ASSERT_OK(schema.AddAttribute({"A", DataType::kString, {}}));
  ASSERT_OK(schema.AddAttribute({"B", DataType::kString, {}}));
  SatisfiabilityChecker checker(schema);
  ASSERT_OK_AND_ASSIGN(auto report, checker.Check(Parse("t: [FLAG=Y] -> [B=1]\n"
                                                        "t: [FLAG=N] -> [B=2]\n"
                                                        "t: [A=_] -> [B=3]\n")));
  EXPECT_FALSE(report.satisfiable);
  // With an infinite domain the same shape IS satisfiable (FLAG = other).
  Schema open = Schema::AllStrings({"FLAG", "A", "B"});
  SatisfiabilityChecker open_checker(open);
  ASSERT_OK_AND_ASSIGN(auto open_report,
                       open_checker.Check(Parse("t: [FLAG=Y] -> [B=1]\n"
                                                "t: [FLAG=N] -> [B=2]\n"
                                                "t: [A=_] -> [B=3]\n")));
  EXPECT_TRUE(open_report.satisfiable);
}

TEST(SatisfiabilityFiniteDomainTest, WitnessRespectsDomain) {
  Schema schema;
  ASSERT_OK(schema.AddAttribute({"FLAG", DataType::kString,
                                 {Value::String("Y"), Value::String("N")}}));
  ASSERT_OK(schema.AddAttribute({"B", DataType::kString, {}}));
  SatisfiabilityChecker checker(schema);
  ASSERT_OK_AND_ASSIGN(auto report, checker.Check(Parse("t: [FLAG=Y] -> [B=1]")));
  ASSERT_TRUE(report.satisfiable);
  ASSERT_EQ(report.witness_attrs.size(), 2u);
  const Value& flag = report.witness[0];
  EXPECT_TRUE(flag == Value::String("Y") || flag == Value::String("N"));
}

TEST_F(SatisfiabilityTest, MixedRelationsRejected) {
  SatisfiabilityChecker checker(schema_);
  auto r = checker.Check(Parse("t: [A] -> [B]\nother: [A] -> [B]\n"));
  EXPECT_FALSE(r.ok());
}

TEST_F(SatisfiabilityTest, VariableCfdsAloneAlwaysSatisfiable) {
  SatisfiabilityChecker checker(schema_);
  ASSERT_OK_AND_ASSIGN(auto report, checker.Check(Parse("t: [A, B] -> [C]\n"
                                                        "t: [A=1, B=_] -> [C=_]\n")));
  EXPECT_TRUE(report.satisfiable);
}

TEST_F(SatisfiabilityTest, ReportsWorkMeasure) {
  SatisfiabilityChecker checker(schema_);
  ASSERT_OK_AND_ASSIGN(auto report, checker.Check(Parse("t: [A=1] -> [B=2]")));
  EXPECT_GT(report.nodes_explored, 0u);
}

}  // namespace
}  // namespace semandaq::cfd
