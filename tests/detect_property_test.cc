// Cross-implementation property tests: on randomized instances, the three
// detection code paths (native hash detection, generated-SQL detection, and
// incremental detection after a random update stream) must produce exactly
// the same violation structure. This is the central correctness invariant of
// the error detector (Fan et al. [TODS'08], Theorems on detection SQL).

#include <gtest/gtest.h>

#include "cfd/cfd_parser.h"
#include "common/random.h"
#include "detect/incremental_detector.h"
#include "detect/native_detector.h"
#include "detect/sql_detector.h"
#include "test_util.h"
#include "workload/customer_gen.h"
#include "workload/hospital_gen.h"

namespace semandaq::detect {
namespace {

using relational::Database;
using relational::Relation;
using relational::Row;
using relational::TupleId;
using relational::Update;
using relational::UpdateBatch;
using relational::Value;

std::vector<cfd::Cfd> Parse(const std::string& text) {
  auto r = cfd::ParseCfdSet(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(*r) : std::vector<cfd::Cfd>{};
}

void ExpectEquivalent(const ViolationTable& a, const ViolationTable& b,
                      const Relation& rel, const std::string& label) {
  EXPECT_EQ(a.TotalVio(), b.TotalVio()) << label;
  EXPECT_EQ(a.NumViolatingTuples(), b.NumViolatingTuples()) << label;
  EXPECT_EQ(a.groups().size(), b.groups().size()) << label;
  rel.ForEach([&](TupleId tid, const Row&) {
    ASSERT_EQ(a.vio(tid), b.vio(tid)) << label << " tuple " << tid;
  });
}

struct Sweep {
  size_t tuples;
  double noise;
  uint64_t seed;
};

class DetectorEquivalence : public ::testing::TestWithParam<Sweep> {};

TEST_P(DetectorEquivalence, NativeEqualsSqlOnCustomer) {
  const Sweep p = GetParam();
  workload::CustomerWorkloadOptions opts;
  opts.num_tuples = p.tuples;
  opts.noise_rate = p.noise;
  opts.seed = p.seed;
  auto wl = workload::CustomerGenerator::Generate(opts);
  auto cfds = Parse(workload::CustomerGenerator::PaperCfds());

  NativeDetector native(&wl.dirty, cfds);
  ASSERT_OK_AND_ASSIGN(ViolationTable nat, native.Detect());

  Database db;
  ASSERT_OK(db.AddRelation(wl.dirty.Clone()));
  SqlDetector sql(&db, "customer", cfds);
  ASSERT_OK_AND_ASSIGN(ViolationTable sq, sql.Detect());

  ExpectEquivalent(nat, sq, wl.dirty, "native-vs-sql");
}

TEST_P(DetectorEquivalence, NativeEqualsSqlOnHospital) {
  const Sweep p = GetParam();
  workload::HospitalWorkloadOptions opts;
  opts.num_tuples = p.tuples;
  opts.noise_rate = p.noise;
  opts.seed = p.seed;
  auto wl = workload::HospitalGenerator::Generate(opts);
  auto cfds = Parse(workload::HospitalGenerator::HospitalCfds());

  NativeDetector native(&wl.dirty, cfds);
  ASSERT_OK_AND_ASSIGN(ViolationTable nat, native.Detect());

  Database db;
  ASSERT_OK(db.AddRelation(wl.dirty.Clone()));
  SqlDetector sql(&db, "hospital", cfds);
  ASSERT_OK_AND_ASSIGN(ViolationTable sq, sql.Detect());

  ExpectEquivalent(nat, sq, wl.dirty, "native-vs-sql-hospital");
}

TEST_P(DetectorEquivalence, IncrementalEqualsFullAfterRandomUpdates) {
  const Sweep p = GetParam();
  workload::CustomerWorkloadOptions opts;
  opts.num_tuples = p.tuples;
  opts.noise_rate = p.noise;
  opts.seed = p.seed;
  auto wl = workload::CustomerGenerator::Generate(opts);
  auto cfds = Parse(workload::CustomerGenerator::PaperCfds());

  IncrementalDetector inc(&wl.dirty, cfds);
  ASSERT_OK(inc.Initialize());

  // Random update stream: inserts sampled from existing rows (possibly
  // corrupted), point deletes, and point modifications.
  common::Rng rng(p.seed ^ 0xDEADBEEF);
  const size_t kSteps = 40;
  for (size_t step = 0; step < kSteps; ++step) {
    std::vector<TupleId> live = wl.dirty.LiveIds();
    if (live.empty()) break;
    UpdateBatch batch;
    const uint64_t kind = rng.NextBelow(3);
    const TupleId victim = live[rng.NextIndex(live.size())];
    if (kind == 0) {
      Row row = wl.dirty.row(victim);
      if (rng.NextBool(0.5)) {
        row[1 + rng.NextIndex(row.size() - 1)] =
            Value::String(rng.NextString(4));
      }
      batch.push_back(Update::Insert(std::move(row)));
    } else if (kind == 1) {
      batch.push_back(Update::DeleteTuple(victim));
    } else {
      const size_t col = 1 + rng.NextIndex(wl.dirty.schema().size() - 1);
      batch.push_back(Update::Modify(victim, col, Value::String(rng.NextString(3))));
    }
    ASSERT_OK(inc.ApplyAndDetect(batch));
  }

  NativeDetector full(&wl.dirty, cfds);
  ASSERT_OK_AND_ASSIGN(ViolationTable from_scratch, full.Detect());
  ExpectEquivalent(inc.Snapshot(), from_scratch, wl.dirty, "incremental-vs-full");
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, DetectorEquivalence,
    ::testing::Values(Sweep{50, 0.0, 1}, Sweep{50, 0.1, 2}, Sweep{200, 0.05, 3},
                      Sweep{200, 0.2, 4}, Sweep{500, 0.02, 5}, Sweep{500, 0.3, 6},
                      Sweep{1000, 0.05, 7}, Sweep{100, 0.5, 8}),
    [](const ::testing::TestParamInfo<Sweep>& info) {
      return "n" + std::to_string(info.param.tuples) + "_noise" +
             std::to_string(static_cast<int>(info.param.noise * 100)) + "_seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace semandaq::detect
