#include <gtest/gtest.h>

#include "cfd/cfd_parser.h"
#include "detect/incremental_detector.h"
#include "detect/native_detector.h"
#include "test_util.h"
#include "workload/customer_gen.h"

namespace semandaq::detect {
namespace {

using relational::Relation;
using relational::Row;
using relational::TupleId;
using relational::Update;
using relational::Value;

std::vector<cfd::Cfd> Parse(const std::string& text) {
  auto r = cfd::ParseCfdSet(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(*r) : std::vector<cfd::Cfd>{};
}

Row CustomerRow(const char* name, const char* cnt, const char* city,
                const char* zip, const char* str, const char* cc, const char* ac) {
  return {Value::String(name), Value::String(cnt), Value::String(city),
          Value::String(zip),  Value::String(str), Value::String(cc),
          Value::String(ac)};
}

void ExpectEquivalent(const ViolationTable& a, const ViolationTable& b,
                      const Relation& rel) {
  EXPECT_EQ(a.TotalVio(), b.TotalVio());
  EXPECT_EQ(a.NumViolatingTuples(), b.NumViolatingTuples());
  rel.ForEach([&](TupleId tid, const Row&) {
    EXPECT_EQ(a.vio(tid), b.vio(tid)) << "tuple " << tid;
  });
}

class IncrementalDetectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rel_ = semandaq::testing::PaperCustomerRelation();
    detector_ = std::make_unique<IncrementalDetector>(
        &rel_, Parse(semandaq::testing::PaperCfdText()));
    ASSERT_OK(detector_->Initialize());
  }

  void ExpectMatchesFullDetection() {
    NativeDetector full(&rel_, Parse(semandaq::testing::PaperCfdText()));
    auto table = full.Detect();
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    ExpectEquivalent(detector_->Snapshot(), *table, rel_);
  }

  Relation rel_;
  std::unique_ptr<IncrementalDetector> detector_;
};

TEST_F(IncrementalDetectorTest, InitialSnapshotMatchesFullDetection) {
  ExpectMatchesFullDetection();
  EXPECT_FALSE(detector_->Clean());
}

TEST_F(IncrementalDetectorTest, RequiresInitialize) {
  Relation rel = semandaq::testing::PaperCustomerRelation();
  IncrementalDetector d(&rel, Parse(semandaq::testing::PaperCfdText()));
  EXPECT_FALSE(d.ApplyAndDetect({}).ok());
}

TEST_F(IncrementalDetectorTest, InsertCreatesViolations) {
  // A fourth tuple in the EH2 4SD group with yet another street.
  std::vector<TupleId> inserted;
  ASSERT_OK(detector_->ApplyAndDetect(
      {Update::Insert(CustomerRow("New", "UK", "Edinburgh", "EH2 4SD", "Third St",
                                  "44", "131"))},
      &inserted));
  ASSERT_EQ(inserted.size(), 1u);
  EXPECT_EQ(detector_->Vio(inserted[0]), 3);  // disagrees with all three
  ExpectMatchesFullDetection();
}

TEST_F(IncrementalDetectorTest, InsertCleanTupleNoViolations) {
  std::vector<TupleId> inserted;
  ASSERT_OK(detector_->ApplyAndDetect(
      {Update::Insert(CustomerRow("Ok", "NL", "Utrecht", "3512", "Dom", "31",
                                  "30"))},
      &inserted));
  EXPECT_EQ(detector_->Vio(inserted[0]), 0);
  ExpectMatchesFullDetection();
}

TEST_F(IncrementalDetectorTest, DeleteResolvesGroup) {
  // Removing Rick (the odd street) resolves the multi-tuple violation.
  ASSERT_OK(detector_->ApplyAndDetect({Update::DeleteTuple(1)}));
  EXPECT_EQ(detector_->Vio(0), 0);
  EXPECT_EQ(detector_->Vio(2), 0);
  ExpectMatchesFullDetection();
}

TEST_F(IncrementalDetectorTest, ModifyFixesSingleViolation) {
  // Fixing Eve's CNT to UK resolves the constant CFD violation.
  ASSERT_OK(detector_->ApplyAndDetect({Update::Modify(6, 1, Value::String("UK"))}));
  EXPECT_EQ(detector_->Vio(6), 0);
  ExpectMatchesFullDetection();
}

TEST_F(IncrementalDetectorTest, ModifyCreatesSingleViolation) {
  // Bob's CC becomes 44 while CNT stays US.
  ASSERT_OK(detector_->ApplyAndDetect({Update::Modify(5, 5, Value::String("44"))}));
  EXPECT_EQ(detector_->Vio(5), 1);
  ExpectMatchesFullDetection();
}

TEST_F(IncrementalDetectorTest, ModifyMovesTupleBetweenGroups) {
  // Mary moves into the EH2 4SD zip with her own street: group grows to 4.
  ASSERT_OK(detector_->ApplyAndDetect({Update::Modify(3, 3,
                                                      Value::String("EH2 4SD"))}));
  EXPECT_GT(detector_->Vio(3), 0);
  ExpectMatchesFullDetection();
  // And back out again.
  ASSERT_OK(detector_->ApplyAndDetect({Update::Modify(3, 3,
                                                      Value::String("EH8 9LE"))}));
  EXPECT_EQ(detector_->Vio(3), 0);
  ExpectMatchesFullDetection();
}

TEST_F(IncrementalDetectorTest, CleanTransition) {
  // Fix everything: align streets and Eve's country.
  ASSERT_OK(detector_->ApplyAndDetect({
      Update::Modify(1, 4, Value::String("Mayfield Rd")),
      Update::Modify(6, 1, Value::String("UK")),
  }));
  EXPECT_TRUE(detector_->Clean());
  EXPECT_EQ(detector_->Snapshot().TotalVio(), 0);
  ExpectMatchesFullDetection();
}

TEST_F(IncrementalDetectorTest, MixedBatchKeepsStateConsistent) {
  std::vector<TupleId> inserted;
  ASSERT_OK(detector_->ApplyAndDetect(
      {
          Update::Insert(CustomerRow("X1", "UK", "Edinburgh", "EH2 4SD",
                                     "Mayfield Rd", "44", "131")),
          Update::DeleteTuple(0),
          Update::Modify(2, 4, Value::String("Crichton St")),
          Update::Insert(CustomerRow("X2", "US", "NewYork", "10011", "5th Ave",
                                     "44", "212")),
      },
      &inserted));
  EXPECT_EQ(inserted.size(), 2u);
  ExpectMatchesFullDetection();
}

TEST_F(IncrementalDetectorTest, ErrorsOnDeadTuples) {
  ASSERT_OK(detector_->ApplyAndDetect({Update::DeleteTuple(0)}));
  EXPECT_FALSE(detector_->ApplyAndDetect({Update::DeleteTuple(0)}).ok());
  EXPECT_FALSE(
      detector_->ApplyAndDetect({Update::Modify(0, 1, Value::String("x"))}).ok());
}

TEST_F(IncrementalDetectorTest, ErrorsOnUnknownColumnWithoutDrifting) {
  // The shared pre-flight validation (relational::ValidateUpdate) must
  // reject the modify before LeaveTuple runs, leaving both the relation and
  // the detector state exactly as they were.
  const uint64_t version_before = rel_.version();
  const auto st = detector_->ApplyAndDetect(
      {Update::Modify(0, rel_.schema().size(), Value::String("x"))});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), common::StatusCode::kOutOfRange);
  EXPECT_EQ(rel_.version(), version_before);
  // The tuple is still registered: follow-up updates and snapshots agree
  // with a from-scratch detection.
  ExpectMatchesFullDetection();
  ASSERT_OK(detector_->ApplyAndDetect({Update::Modify(0, 4,
                                                      Value::String("Crichton St"))}));
  ExpectMatchesFullDetection();

  // An arity-mismatched insert is rejected by the same helper.
  EXPECT_FALSE(detector_->ApplyAndDetect({Update::Insert({Value::String("x")})}).ok());
  ExpectMatchesFullDetection();
}

TEST_F(IncrementalDetectorTest, TracksWorkMeasure) {
  const size_t before = detector_->buckets_touched();
  ASSERT_OK(detector_->ApplyAndDetect({Update::Modify(6, 1, Value::String("UK"))}));
  EXPECT_GE(detector_->buckets_touched(), before);
}

// ---------------------------------------------------------------------------
// Initialize()'s bulk bucket build runs in SIMD kernel blocks; the bucket
// state it produces must be byte-identical on every tier — same singles in
// the same order, same groups in the same order, same work measure — both
// right after Initialize and after incremental updates layered on top.

/// Exact (order-sensitive) equality of two snapshots.
void ExpectExactlyEqual(const ViolationTable& a, const ViolationTable& b) {
  ASSERT_EQ(a.singles().size(), b.singles().size());
  for (size_t i = 0; i < a.singles().size(); ++i) {
    EXPECT_EQ(a.singles()[i].tid, b.singles()[i].tid) << "single " << i;
    EXPECT_EQ(a.singles()[i].cfd_index, b.singles()[i].cfd_index) << i;
    EXPECT_EQ(a.singles()[i].pattern_index, b.singles()[i].pattern_index) << i;
  }
  ASSERT_EQ(a.groups().size(), b.groups().size());
  for (size_t i = 0; i < a.groups().size(); ++i) {
    EXPECT_EQ(a.groups()[i].fd_group, b.groups()[i].fd_group) << "group " << i;
    EXPECT_EQ(a.groups()[i].cfd_index, b.groups()[i].cfd_index) << i;
    EXPECT_EQ(a.groups()[i].lhs_key, b.groups()[i].lhs_key) << i;
    EXPECT_EQ(a.groups()[i].members, b.groups()[i].members) << i;
    EXPECT_EQ(a.groups()[i].member_rhs, b.groups()[i].member_rhs) << i;
  }
}

TEST(IncrementalDetectorSimdTest, BucketStateIdenticalAcrossTiers) {
  namespace simd = common::simd;
  const simd::Level kLevels[] = {simd::Level::kScalar, simd::Level::kSse2,
                                 simd::Level::kAvx2};
  const relational::UpdateBatch batch = {
      Update::Insert(CustomerRow("Zed", "UK", "Edinburgh", "EH2 4SD",
                                 "George Sq", "44", "131")),
      Update::Modify(1, 4, Value::String("Mayfield Rd")),
      Update::DeleteTuple(3),
  };

  // Scalar floor is the reference; each tier gets its own relation copy
  // (the detector applies updates through the relation it owns).
  Relation scalar_rel = semandaq::testing::PaperCustomerRelation();
  IncrementalDetector scalar_det(&scalar_rel,
                                 Parse(semandaq::testing::PaperCfdText()),
                                 simd::Level::kScalar);
  ASSERT_OK(scalar_det.Initialize());
  const ViolationTable scalar_initial = scalar_det.Snapshot();
  const size_t scalar_touched = scalar_det.buckets_touched();
  ASSERT_OK(scalar_det.ApplyAndDetect(batch));
  const ViolationTable scalar_updated = scalar_det.Snapshot();

  for (simd::Level level : kLevels) {
    SCOPED_TRACE(std::string("level=") + std::string(simd::LevelName(level)));
    Relation rel = semandaq::testing::PaperCustomerRelation();
    IncrementalDetector det(&rel, Parse(semandaq::testing::PaperCfdText()),
                            level);
    ASSERT_OK(det.Initialize());
    EXPECT_EQ(scalar_touched, det.buckets_touched());
    ExpectExactlyEqual(scalar_initial, det.Snapshot());
    ASSERT_OK(det.ApplyAndDetect(batch));
    ExpectExactlyEqual(scalar_updated, det.Snapshot());
  }
}

TEST(IncrementalDetectorSimdTest, BulkBuildMatchesAcrossTiersOnGenerated) {
  namespace simd = common::simd;
  // A bigger instance with tombstones and NULLs: the generator's dirty
  // customer data plus a deleted stripe, so the kernel-block liveness and
  // non-NULL masks all carry real holes.
  auto make = [] {
    workload::CustomerWorkloadOptions opts;
    opts.num_tuples = 500;
    opts.noise_rate = 0.1;
    opts.seed = 31;
    auto wl = workload::CustomerGenerator::Generate(opts);
    Relation rel = std::move(wl.dirty);
    for (TupleId tid = 0; tid < rel.IdBound(); ++tid) {
      if (tid % 7 == 3) EXPECT_OK(rel.Delete(tid));
    }
    return rel;
  };
  const char* cfds =
      "customer: [CNT=UK, ZIP=_] -> [STR=_]\n"
      "customer: [CC] -> [CNT] { (44 | UK), (31 | NL), (1 | US) }\n"
      "customer: [CNT=_, CITY=_, ZIP=_] -> [AC=_]\n";

  Relation scalar_rel = make();
  IncrementalDetector scalar_det(&scalar_rel, Parse(cfds),
                                 simd::Level::kScalar);
  ASSERT_OK(scalar_det.Initialize());
  const ViolationTable reference = scalar_det.Snapshot();
  const size_t touched = scalar_det.buckets_touched();

  for (simd::Level level : {simd::Level::kSse2, simd::Level::kAvx2}) {
    SCOPED_TRACE(std::string("level=") + std::string(simd::LevelName(level)));
    Relation rel = make();
    IncrementalDetector det(&rel, Parse(cfds), level);
    ASSERT_OK(det.Initialize());
    EXPECT_EQ(touched, det.buckets_touched());
    ExpectExactlyEqual(reference, det.Snapshot());
  }
}

}  // namespace
}  // namespace semandaq::detect
