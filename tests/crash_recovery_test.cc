// The crash-at-every-failpoint recovery sweep (docs/robustness.md,
// Crash-recovery contract): run a save-then-mutate workload once cleanly
// under failpoint capture to discover every site the path crosses, then
// crash at each site in turn — torn writes included — pull the plug
// (FaultInjectionEnv drops unsynced bytes), reboot, and require that the
// recovered relation's detection output is byte-identical to a serial
// in-memory reference holding exactly the acknowledged prefix:
//
//   sync=always    zero acknowledged records lost (recovered == acked)
//   sync=batch(N)  at most the unsynced tail lost (< N records)
//   sync=none      any acknowledged prefix — but never corruption
//
// An unacknowledged save may leave nothing to open; that refusal must be a
// clean status, and an open that *does* succeed must still replay to a
// consistent acknowledged prefix.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "core/semandaq.h"
#include "storage/env.h"
#include "storage/fault_env.h"
#include "storage/wal.h"
#include "test_util.h"
#include "workload/customer_gen.h"

namespace semandaq::core {
namespace {

using common::Failpoints;
using common::Status;
using relational::Relation;
using relational::Row;
using relational::TupleId;
using relational::Value;
using storage::Env;
using storage::FaultInjectionEnv;
using storage::SyncPolicy;

constexpr size_t kMutations = 9;

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + name;
}

void CleanupSnapshot(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  std::remove((path + ".tmp").c_str());
  std::remove((path + ".wal.tmp").c_str());
}

Row CustomerRow(const std::string& name) {
  return {Value::String(name),        Value::String("UK"),
          Value::String("Edinburgh"), Value::String("EH2 4SD"),
          Value::String("Mayfield Rd"), Value::String("44"),
          Value::String("131")};
}

/// Mutation i of the deterministic schedule: an insert, an edit of a base
/// tuple, then a delete of the row the preceding insert produced (the
/// paper relation holds tuples 0..6, so inserts get tids 7, 8, 9).
Status ApplyMutation(Relation* rel, size_t i) {
  switch (i % 3) {
    case 0:
      return rel->Insert(CustomerRow("Extra" + std::to_string(i))).status();
    case 1:
      return rel->SetCell(static_cast<TupleId>(i / 3),
                          workload::CustomerGenerator::kStr,
                          Value::String("Street " + std::to_string(i)));
    default:
      return rel->Delete(static_cast<TupleId>(7 + i / 3));
  }
}

/// A fresh in-memory system holding the paper relation with the first `k`
/// schedule mutations applied — the serial reference a recovered relation
/// must match. Never touches storage.
std::unique_ptr<Semandaq> ReferenceWithPrefix(size_t k) {
  auto sys = std::make_unique<Semandaq>();
  EXPECT_OK(sys->Connect(semandaq::testing::PaperCustomerRelation()));
  EXPECT_OK(
      sys->constraints().AddCfdsFromText(semandaq::testing::PaperCfdText()));
  Relation* rel = sys->database().FindMutableRelation("customer");
  EXPECT_NE(rel, nullptr);
  for (size_t i = 0; i < k; ++i) {
    SCOPED_TRACE("reference mutation " + std::to_string(i));
    EXPECT_OK(ApplyMutation(rel, i));
  }
  return sys;
}

/// Byte-level detection equality: summary, violation counts, and every
/// single/group membership must agree.
void ExpectSameDetection(Semandaq& a, Semandaq& b, const std::string& trace) {
  auto va = a.DetectErrors("customer");
  auto vb = b.DetectErrors("customer");
  ASSERT_TRUE(va.ok()) << trace << ": " << va.status().ToString();
  ASSERT_TRUE(vb.ok()) << trace << ": " << vb.status().ToString();
  EXPECT_EQ(va->Summary(), vb->Summary()) << trace;
  EXPECT_EQ(va->TotalVio(), vb->TotalVio()) << trace;
  ASSERT_EQ(va->singles().size(), vb->singles().size()) << trace;
  for (size_t i = 0; i < va->singles().size(); ++i) {
    EXPECT_EQ(va->singles()[i].tid, vb->singles()[i].tid) << trace << " #" << i;
  }
  ASSERT_EQ(va->groups().size(), vb->groups().size()) << trace;
  for (size_t i = 0; i < va->groups().size(); ++i) {
    EXPECT_EQ(va->groups()[i].members, vb->groups()[i].members)
        << trace << " #" << i;
  }
}

/// What the workload got acknowledged before the injected crash (if any).
struct RunOutcome {
  bool save_acked = false;
  size_t acked = 0;  ///< mutations whose WAL append returned durably-OK
};

/// The workload under test: connect the paper relation, save it with
/// `policy`, then run the mutation schedule, treating a mutation as
/// acknowledged only while the attachment reports a clean journal.
RunOutcome RunWorkload(const std::string& path, SyncPolicy policy) {
  RunOutcome out;
  Semandaq sys;
  EXPECT_OK(sys.Connect(semandaq::testing::PaperCustomerRelation()));
  EXPECT_OK(
      sys.constraints().AddCfdsFromText(semandaq::testing::PaperCfdText()));
  auto saved = sys.SaveRelation("customer", path, /*compact_after=*/0, policy);
  if (!saved.ok()) return out;  // crashed inside the save: nothing acked
  out.save_acked = true;
  Relation* rel = sys.database().FindMutableRelation("customer");
  EXPECT_NE(rel, nullptr);
  for (size_t i = 0; i < kMutations; ++i) {
    const Status st = ApplyMutation(rel, i);
    storage::WalAttachment* wal = sys.AttachedWal("customer");
    if (!st.ok() || wal == nullptr || !wal->status().ok()) {
      return out;  // this mutation crashed; it was never acknowledged
    }
    ++out.acked;
  }
  return out;
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<FaultInjectionEnv>();
    Env::Set(env_.get());
  }
  void TearDown() override {
    Failpoints::Instance().Clear();
    Env::Set(nullptr);
  }

  /// Runs the workload once cleanly under capture and returns every
  /// failpoint site the path crosses (the sweep's crash schedule).
  std::vector<std::string> CaptureSites(const std::string& path,
                                        SyncPolicy policy) {
    Failpoints::Instance().StartCapture();
    const RunOutcome clean = RunWorkload(path, policy);
    std::vector<std::string> sites = Failpoints::Instance().StopCapture();
    EXPECT_TRUE(clean.save_acked);
    EXPECT_EQ(clean.acked, kMutations);
    EXPECT_FALSE(sites.empty());
    env_->Reset();
    CleanupSnapshot(path);
    return sites;
  }

  /// One sweep iteration: crash at the (`skip_hits`+1)th hit of `site`
  /// keeping `keep_bytes` of any pending write, power-cut, reboot, and
  /// check the recovery contract for `policy`.
  void CrashAndRecover(const std::string& path, SyncPolicy policy,
                       const std::string& site, size_t keep_bytes,
                       size_t skip_hits = 0) {
    const std::string trace =
        policy.ToString() + " crash@" + site + " keep=" +
        std::to_string(keep_bytes) + " skip=" + std::to_string(skip_hits);
    SCOPED_TRACE(trace);
    CleanupSnapshot(path);
    env_->Reset();
    Failpoints::Instance().Clear();
    common::FailpointConfig config;
    config.action = common::FailpointConfig::Action::kCrash;
    config.status = Status::IoError("crash injected at " + site);
    config.keep_bytes = keep_bytes;
    config.skip_hits = skip_hits;
    Failpoints::Instance().Arm(site, config);

    const RunOutcome out = RunWorkload(path, policy);

    Failpoints::Instance().Clear();
    ASSERT_OK(env_->SimulatePowerCut());

    // Reboot: a fresh system opens whatever survived.
    Semandaq rebooted;
    auto opened = rebooted.OpenRelation("customer", path);
    if (!out.save_acked && !opened.ok()) {
      return;  // unacked save, clean refusal — allowed
    }
    // An acknowledged save must recover; an unacked one that opens anyway
    // must still land on a consistent acknowledged prefix.
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    const size_t recovered = opened->wal_records;
    ASSERT_LE(recovered, out.acked);
    if (policy.mode == SyncPolicy::Mode::kAlways) {
      EXPECT_EQ(recovered, out.acked) << "acknowledged records lost";
    } else if (policy.mode == SyncPolicy::Mode::kBatch) {
      EXPECT_LT(out.acked - recovered, policy.batch_records)
          << "lost more than the unsynced tail";
    }
    ASSERT_OK(rebooted.constraints().AddCfdsFromText(
        semandaq::testing::PaperCfdText()));
    auto reference = ReferenceWithPrefix(recovered);
    ExpectSameDetection(*reference, rebooted, trace);
  }

  void Sweep(SyncPolicy policy, const std::string& tag) {
    const std::string path = TempPath("crash_sweep_" + tag + ".sdq");
    const std::vector<std::string> sites = CaptureSites(path, policy);
    for (const std::string& site : sites) {
      // keep_bytes=0: the write never lands; keep_bytes=5: a torn prefix.
      CrashAndRecover(path, policy, site, /*keep_bytes=*/0);
      CrashAndRecover(path, policy, site, /*keep_bytes=*/5);
      if (site.rfind("wal.append.", 0) == 0) {
        // Crash mid-schedule too, so batch policies cross a sync boundary
        // before the cut (some records durable, an unsynced tail behind).
        CrashAndRecover(path, policy, site, /*keep_bytes=*/5,
                        /*skip_hits=*/4);
      }
    }
    CleanupSnapshot(path);
  }

  std::unique_ptr<FaultInjectionEnv> env_;
};

TEST_F(CrashRecoveryTest, SweepSyncAlwaysLosesNoAcknowledgedRecord) {
  Sweep(SyncPolicy{}, "always");
}

TEST_F(CrashRecoveryTest, SweepSyncBatchLosesAtMostTheUnsyncedTail) {
  SyncPolicy batch;
  batch.mode = SyncPolicy::Mode::kBatch;
  batch.batch_records = 3;
  Sweep(batch, "batch3");
}

TEST_F(CrashRecoveryTest, SweepSyncNoneNeverCorrupts) {
  SyncPolicy none;
  none.mode = SyncPolicy::Mode::kNone;
  Sweep(none, "none");
}

TEST_F(CrashRecoveryTest, CleanRunVisitsTheWholeWritePath) {
  // The capture list is the sweep's coverage; pin the load-bearing sites
  // so a refactor that silently drops a failpoint fails here, not by
  // quietly shrinking the sweep.
  const std::string path = TempPath("crash_sweep_coverage.sdq");
  const std::vector<std::string> sites = CaptureSites(path, SyncPolicy{});
  const std::vector<std::string> expected = {
      "wal.create.pre_open",     "wal.create.write_header",
      "wal.create.pre_sync",     "snapshot.save.write",
      "snapshot.save.pre_sync",  "snapshot.save.pre_publish",
      "snapshot.save.between_renames", "snapshot.save.pre_dir_sync",
      "wal.append.pre_write",    "wal.append.write",
      "wal.append.pre_sync",
  };
  for (const std::string& name : expected) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), name), sites.end())
        << "site " << name << " not captured";
  }
  CleanupSnapshot(path);
}

TEST_F(CrashRecoveryTest, DatabaseSaveCrashSweepNeverCorruptsTheCatalog) {
  // savedb publishes the catalog manifest last, after every relation's
  // snapshot: a crash anywhere in the path either leaves no manifest (a
  // clean NotFound on reboot) or a complete, consistent database.
  const std::string dir = TempPath("crash_sweep_db");

  auto run_savedb = [&]() -> bool {
    Semandaq sys;
    EXPECT_OK(sys.Connect(semandaq::testing::PaperCustomerRelation()));
    EXPECT_OK(
        sys.constraints().AddCfdsFromText(semandaq::testing::PaperCfdText()));
    Relation* rel = sys.database().FindMutableRelation("customer");
    EXPECT_NE(rel, nullptr);
    for (size_t i = 0; i < 4; ++i) EXPECT_OK(ApplyMutation(rel, i));
    return sys.SaveDatabase(dir).ok();
  };
  auto cleanup = [&]() {
    CleanupSnapshot(dir + "/customer.sdq");
    std::remove((dir + "/catalog.sdqc").c_str());
    std::remove((dir + "/catalog.sdqc.tmp").c_str());
  };

  Failpoints::Instance().StartCapture();
  ASSERT_TRUE(run_savedb());
  const std::vector<std::string> sites = Failpoints::Instance().StopCapture();
  ASSERT_FALSE(sites.empty());
  EXPECT_NE(std::find_if(sites.begin(), sites.end(),
                         [](const std::string& s) {
                           return s.rfind("catalog.save.", 0) == 0;
                         }),
            sites.end())
      << "savedb never crossed a catalog failpoint";
  env_->Reset();
  cleanup();

  auto reference = ReferenceWithPrefix(4);
  for (const std::string& site : sites) {
    SCOPED_TRACE("savedb crash@" + site);
    cleanup();
    env_->Reset();
    Failpoints::Instance().Clear();
    Failpoints::Instance().ArmCrash(site, /*keep_bytes=*/5);
    const bool acked = run_savedb();
    Failpoints::Instance().Clear();
    ASSERT_OK(env_->SimulatePowerCut());

    Semandaq rebooted;
    auto opened = rebooted.OpenDatabase(dir);
    if (acked) {
      ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    }
    if (!opened.ok()) continue;  // unacked savedb, clean refusal
    // A manifest that opens is the full acknowledged database, never a
    // torn mix.
    EXPECT_EQ(opened->relations, 1u);
    ASSERT_OK(rebooted.constraints().AddCfdsFromText(
        semandaq::testing::PaperCfdText()));
    ExpectSameDetection(*reference, rebooted, "savedb crash@" + site);
  }
  cleanup();
}

}  // namespace
}  // namespace semandaq::core
