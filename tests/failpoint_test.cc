// The fault-injection machinery itself (common/failpoint + storage/env +
// storage/fault_env): unarmed sites are no-ops, armed sites inject errors
// or torn-write crashes, capture mode records the sites a path hits, and
// FaultInjectionEnv models a power cut as truncate-to-synced-prefix. The
// WAL SyncPolicy grammar and its fdatasync batching ride on top.

#include <cstdio>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/status.h"
#include "storage/env.h"
#include "storage/fault_env.h"
#include "storage/wal.h"
#include "test_util.h"

namespace semandaq {
namespace {

using common::FailpointConfig;
using common::Failpoints;
using common::Status;
using storage::Env;
using storage::FaultInjectionEnv;
using storage::SyncPolicy;
using storage::WritableFile;

std::string TempPath(const std::string& name) {
  const std::string path = std::string(::testing::TempDir()) + name;
  std::remove(path.c_str());
  return path;
}

/// A function body with a plain failpoint site, the way production write
/// paths mark theirs.
Status GuardedStep() {
  SEMANDAQ_FAILPOINT("test.step");
  return Status::OK();
}

/// A function body with a pending-write site: unarmed it appends all of
/// `data`; crash-armed it appends a torn prefix and unwinds.
Status GuardedWrite(WritableFile* file, std::string_view data) {
  SEMANDAQ_FAILPOINT_WRITE("test.write", file, data);
  return Status::OK();
}

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Failpoints::Instance().Clear();
    Env::Set(nullptr);
  }
};

TEST_F(FailpointTest, UnarmedSiteIsANoop) {
  EXPECT_OK(GuardedStep());
  EXPECT_OK(GuardedStep());
}

TEST_F(FailpointTest, ArmedSiteInjectsItsStatusUntilDisarmed) {
  FailpointConfig config;
  config.status = Status::IoError("boom at test.step");
  Failpoints::Instance().Arm("test.step", config);

  const Status st = GuardedStep();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("boom"), std::string::npos);
  EXPECT_FALSE(GuardedStep().ok());  // stays triggered

  Failpoints::Instance().Disarm("test.step");
  EXPECT_OK(GuardedStep());
}

TEST_F(FailpointTest, SkipHitsPassesThroughThenStaysTriggered) {
  FailpointConfig config;
  config.skip_hits = 2;
  Failpoints::Instance().Arm("test.step", config);

  EXPECT_OK(GuardedStep());        // hit 1: skipped
  EXPECT_OK(GuardedStep());        // hit 2: skipped
  EXPECT_FALSE(GuardedStep().ok());  // hit 3: fires
  EXPECT_FALSE(GuardedStep().ok());  // and stays fired
}

TEST_F(FailpointTest, CaptureRecordsFirstHitOrderDeduplicated) {
  Failpoints::Instance().StartCapture();
  EXPECT_OK(GuardedStep());
  EXPECT_OK(GuardedStep());  // duplicate: recorded once
  const std::string path = TempPath("failpoint_capture.bin");
  {
    ASSERT_OK_AND_ASSIGN(auto file, Env::Default()->NewWritableFile(
                                        path, Env::OpenMode::kTruncate));
    EXPECT_OK(GuardedWrite(file.get(), "abc"));
  }
  const auto sites = Failpoints::Instance().StopCapture();
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0], "test.step");
  EXPECT_EQ(sites[1], "test.write");
  std::remove(path.c_str());
}

TEST_F(FailpointTest, CrashArmTearsThePendingWrite) {
  const std::string path = TempPath("failpoint_torn.bin");
  Failpoints::Instance().ArmCrash("test.write", /*keep_bytes=*/4);
  {
    ASSERT_OK_AND_ASSIGN(auto file, Env::Default()->NewWritableFile(
                                        path, Env::OpenMode::kTruncate));
    const Status st = GuardedWrite(file.get(), "0123456789");
    EXPECT_FALSE(st.ok());
    EXPECT_TRUE(Failpoints::IsInjectedCrash(st)) << st.ToString();
    EXPECT_OK(file->Close());
  }
  // Only the torn prefix reached the file.
  ASSERT_OK_AND_ASSIGN(std::string contents,
                       Env::Default()->ReadFileToString(path));
  EXPECT_EQ(contents, "0123");
  EXPECT_FALSE(Failpoints::IsInjectedCrash(Status::IoError("ordinary")));
  std::remove(path.c_str());
}

TEST_F(FailpointTest, FaultEnvPowerCutDropsUnsyncedBytes) {
  FaultInjectionEnv fenv;
  const std::string path = TempPath("fault_env_cut.bin");
  {
    ASSERT_OK_AND_ASSIGN(auto file,
                         fenv.NewWritableFile(path, Env::OpenMode::kTruncate));
    ASSERT_OK(file->Append("durable"));
    ASSERT_OK(file->Sync());
    ASSERT_OK(file->Append("-volatile-tail"));
    ASSERT_OK(file->Close());  // Close is not a sync
  }
  // Before the cut, readers see the live state (the page cache).
  ASSERT_OK_AND_ASSIGN(std::string live, fenv.ReadFileToString(path));
  EXPECT_EQ(live, "durable-volatile-tail");
  EXPECT_EQ(fenv.sync_calls(), 1u);

  ASSERT_OK(fenv.SimulatePowerCut());
  ASSERT_OK_AND_ASSIGN(std::string recovered, fenv.ReadFileToString(path));
  EXPECT_EQ(recovered, "durable");
  std::remove(path.c_str());
}

TEST_F(FailpointTest, FaultEnvRenameCarriesTrackedStateToTheNewName) {
  FaultInjectionEnv fenv;
  const std::string tmp = TempPath("fault_env_rename.tmp");
  const std::string dst = TempPath("fault_env_rename.bin");
  {
    ASSERT_OK_AND_ASSIGN(auto file,
                         fenv.NewWritableFile(tmp, Env::OpenMode::kTruncate));
    ASSERT_OK(file->Append("synced"));
    ASSERT_OK(file->Sync());
    ASSERT_OK(file->Append("+lost"));
    ASSERT_OK(file->Close());
  }
  ASSERT_OK(fenv.RenameFile(tmp, dst));
  ASSERT_OK(fenv.SimulatePowerCut());
  EXPECT_FALSE(fenv.FileExists(tmp));
  ASSERT_OK_AND_ASSIGN(std::string recovered, fenv.ReadFileToString(dst));
  EXPECT_EQ(recovered, "synced");
  std::remove(dst.c_str());
}

TEST_F(FailpointTest, SyncPolicyGrammarRoundTrips) {
  ASSERT_OK_AND_ASSIGN(SyncPolicy always, SyncPolicy::Parse("always"));
  EXPECT_EQ(always.mode, SyncPolicy::Mode::kAlways);
  EXPECT_EQ(always.ToString(), "always");

  ASSERT_OK_AND_ASSIGN(SyncPolicy none, SyncPolicy::Parse("none"));
  EXPECT_EQ(none.mode, SyncPolicy::Mode::kNone);
  EXPECT_EQ(none.ToString(), "none");

  ASSERT_OK_AND_ASSIGN(SyncPolicy batch, SyncPolicy::Parse("batch"));
  EXPECT_EQ(batch.mode, SyncPolicy::Mode::kBatch);
  EXPECT_EQ(batch.batch_records, 64u);  // the default batch width

  ASSERT_OK_AND_ASSIGN(SyncPolicy batch8, SyncPolicy::Parse("batch(8)"));
  EXPECT_EQ(batch8.mode, SyncPolicy::Mode::kBatch);
  EXPECT_EQ(batch8.batch_records, 8u);
  EXPECT_EQ(batch8.ToString(), "batch(8)");

  EXPECT_FALSE(SyncPolicy::Parse("").ok());
  EXPECT_FALSE(SyncPolicy::Parse("sometimes").ok());
  EXPECT_FALSE(SyncPolicy::Parse("batch()").ok());
  EXPECT_FALSE(SyncPolicy::Parse("batch(0)").ok());
  EXPECT_FALSE(SyncPolicy::Parse("batch(x)").ok());
  EXPECT_FALSE(SyncPolicy::Parse("batch(8").ok());
}

/// Counts the fdatasyncs a WAL performs for `records` appends under
/// `policy` (the header sync is always the first one).
uint64_t SyncCallsFor(SyncPolicy policy, size_t records) {
  FaultInjectionEnv fenv;
  Env::Set(&fenv);
  const std::string path =
      TempPath("failpoint_syncpolicy_" + policy.ToString() + ".wal");
  {
    auto writer = storage::WalWriter::Create(path, /*snapshot_checksum=*/7,
                                             policy);
    EXPECT_TRUE(writer.ok()) << writer.status().ToString();
    for (size_t i = 0; i < records; ++i) {
      EXPECT_OK(writer->AppendDelete(static_cast<relational::TupleId>(i)));
    }
  }
  Env::Set(nullptr);
  std::remove(path.c_str());
  return fenv.sync_calls();
}

TEST_F(FailpointTest, SyncPolicyGovernsWalFdatasyncCadence) {
  SyncPolicy always;
  EXPECT_EQ(SyncCallsFor(always, 6), 1u + 6u);  // header + one per record

  SyncPolicy batch3;
  batch3.mode = SyncPolicy::Mode::kBatch;
  batch3.batch_records = 3;
  EXPECT_EQ(SyncCallsFor(batch3, 6), 1u + 2u);  // header + one per 3 records
  EXPECT_EQ(SyncCallsFor(batch3, 7), 1u + 2u);  // tail of 1 stays unsynced

  SyncPolicy none;
  none.mode = SyncPolicy::Mode::kNone;
  EXPECT_EQ(SyncCallsFor(none, 6), 1u);  // header only
}

TEST_F(FailpointTest, SyncNowFlushesTheBatchTail) {
  FaultInjectionEnv fenv;
  Env::Set(&fenv);
  const std::string path = TempPath("failpoint_syncnow.wal");
  SyncPolicy batch;
  batch.mode = SyncPolicy::Mode::kBatch;
  batch.batch_records = 100;
  {
    ASSERT_OK_AND_ASSIGN(auto writer,
                         storage::WalWriter::Create(path, 7, batch));
    ASSERT_OK(writer.AppendDelete(1));
    ASSERT_OK(writer.AppendDelete(2));
    EXPECT_EQ(fenv.sync_calls(), 1u);  // header only so far
    ASSERT_OK(writer.SyncNow());
    EXPECT_EQ(fenv.sync_calls(), 2u);
  }
  Env::Set(nullptr);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace semandaq
