// Kernel-level property sweep for the common::simd dispatch tiers: every
// vector tier must match the scalar reference bit-for-bit on every kernel,
// for arbitrary lengths (vector-width remainders included), misaligned
// base pointers, NULL-heavy data, and degenerate inputs (n = 0) — the
// contracts of docs/simd.md, checked directly rather than through the
// detector.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/simd/simd.h"
#include "test_util.h"

namespace semandaq::common::simd {
namespace {

/// The sizes that historically break SIMD tails: zero, sub-width, exact
/// widths, one over/under a word, and block-scale.
const size_t kSizes[] = {0, 1, 3, 7, 8, 15, 16, 63, 64, 65, 127, 128, 1000, 4096, 4101};

/// Every tier; KernelsFor clamps to what the host supports, so the sweep
/// is safe everywhere (on a non-AVX2 host the kAvx2 request re-tests the
/// best available tier, which is harmless).
const Level kLevels[] = {Level::kScalar, Level::kSse2, Level::kAvx2};

std::vector<uint32_t> RandomCodes(common::Rng* rng, size_t n, uint32_t card) {
  std::vector<uint32_t> v(n);
  for (auto& x : v) x = static_cast<uint32_t>(rng->NextBelow(card));
  return v;
}

std::vector<uint8_t> RandomLive(common::Rng* rng, size_t n) {
  std::vector<uint8_t> v(n);
  for (auto& x : v) x = rng->NextBelow(4) != 0 ? 1 : 0;
  return v;
}

void ExpectMasksEqual(const std::vector<uint64_t>& ref,
                      const std::vector<uint64_t>& got, size_t n,
                      const std::string& what) {
  for (size_t w = 0; w < MaskWords(n); ++w) {
    ASSERT_EQ(ref[w], got[w]) << what << " word " << w << " of n=" << n;
  }
}

TEST(SimdKernelTest, DispatchResolvesAndClampToSupported) {
  EXPECT_TRUE(Supported(Level::kScalar));
  EXPECT_TRUE(Supported(Level::kAuto));
  const Kernels& active = KernelsFor(Level::kAuto);
  EXPECT_LE(active.level, MaxSupportedLevel());
  // An explicit over-ask clamps instead of crashing.
  const Kernels& avx2 = KernelsFor(Level::kAvx2);
  EXPECT_LE(avx2.level, MaxSupportedLevel());
  EXPECT_EQ(KernelsFor(Level::kScalar).level, Level::kScalar);
}

TEST(SimdKernelTest, LevelNamesRoundTrip) {
  for (const Level l :
       {Level::kScalar, Level::kSse2, Level::kAvx2, Level::kAuto}) {
    Level parsed;
    ASSERT_TRUE(ParseLevel(LevelName(l), &parsed));
    EXPECT_EQ(parsed, l);
  }
  Level ignored;
  EXPECT_FALSE(ParseLevel("avx512", &ignored));
  EXPECT_FALSE(ParseLevel("", &ignored));
}

TEST(SimdKernelTest, FilterEq32MatchesScalar) {
  common::Rng rng(11);
  const Kernels& ref = internal::ScalarKernels();
  for (const size_t n : kSizes) {
    // +1 slack so the misaligned variant can start at data() + 1.
    const auto data = RandomCodes(&rng, n + 1, 5);
    const uint32_t c = static_cast<uint32_t>(rng.NextBelow(5));
    std::vector<uint32_t> want(n + 1), got(n + 1);
    const size_t want_n = ref.FilterEq32(data.data(), n, c, 100, want.data());
    for (const Level level : kLevels) {
      const Kernels& kn = KernelsFor(level);
      for (const size_t off : {size_t{0}, size_t{1}}) {
        if (off > n) continue;
        const size_t ref_n =
            ref.FilterEq32(data.data() + off, n - off, c, 100, want.data());
        const size_t got_n =
            kn.FilterEq32(data.data() + off, n - off, c, 100, got.data());
        ASSERT_EQ(ref_n, got_n) << LevelName(kn.level) << " n=" << n;
        for (size_t i = 0; i < ref_n; ++i) {
          ASSERT_EQ(want[i], got[i]) << LevelName(kn.level) << " n=" << n;
        }
      }
    }
    (void)want_n;
  }
}

TEST(SimdKernelTest, FilterEqMulti32AndMaskNeMatchScalar) {
  common::Rng rng(22);
  const Kernels& ref = internal::ScalarKernels();
  for (const size_t n : kSizes) {
    const auto a = RandomCodes(&rng, n + 1, 4);
    const auto b = RandomCodes(&rng, n + 1, 3);
    const uint32_t ca = 1, cb = 2;
    for (const size_t off : {size_t{0}, size_t{1}}) {
      if (off > n) continue;
      const size_t m = n - off;
      const uint32_t* cols[2] = {a.data() + off, b.data() + off};
      const uint32_t consts[2] = {ca, cb};
      // Seed masks all-ones over m bits (tail zeroed) so the conjunction
      // result is fully kernel-produced.
      std::vector<uint64_t> seed(MaskWords(m) + 1, 0);
      for (size_t i = 0; i < m; ++i) seed[i / 64] |= uint64_t{1} << (i % 64);
      for (const Level level : kLevels) {
        const Kernels& kn = KernelsFor(level);
        std::vector<uint64_t> want = seed, got = seed;
        ref.FilterEqMulti32(cols, consts, 2, m, want.data());
        kn.FilterEqMulti32(cols, consts, 2, m, got.data());
        ExpectMasksEqual(want, got, m,
                         std::string("FilterEqMulti32/") +
                             std::string(LevelName(kn.level)));
        ref.MaskNeAnd32(cols[0], m, 0, want.data());
        kn.MaskNeAnd32(cols[0], m, 0, got.data());
        ExpectMasksEqual(want, got, m,
                         std::string("MaskNeAnd32/") +
                             std::string(LevelName(kn.level)));
      }
    }
  }
}

TEST(SimdKernelTest, MaskLiveMatchesScalarAndZeroesTail) {
  common::Rng rng(33);
  const Kernels& ref = internal::ScalarKernels();
  for (const size_t n : kSizes) {
    const auto live = RandomLive(&rng, n + 1);
    const auto a = RandomCodes(&rng, n + 1, 3);  // card 3 => plenty of code 0
    const auto b = RandomCodes(&rng, n + 1, 2);
    for (const size_t off : {size_t{0}, size_t{1}}) {
      if (off > n) continue;
      const size_t m = n - off;
      const uint32_t* cols[2] = {a.data() + off, b.data() + off};
      for (const size_t ncols : {size_t{0}, size_t{1}, size_t{2}}) {
        std::vector<uint64_t> want(MaskWords(m) + 1, ~uint64_t{0});
        std::vector<uint64_t> got(MaskWords(m) + 1, ~uint64_t{0});
        const size_t want_pop =
            ref.MaskLive(live.data() + off, cols, ncols, 0, m, want.data());
        for (const Level level : kLevels) {
          const Kernels& kn = KernelsFor(level);
          const size_t got_pop =
              kn.MaskLive(live.data() + off, cols, ncols, 0, m, got.data());
          ASSERT_EQ(want_pop, got_pop)
              << LevelName(kn.level) << " n=" << m << " ncols=" << ncols;
          ExpectMasksEqual(want, got, m,
                           std::string("MaskLive/") +
                               std::string(LevelName(kn.level)));
          // Tail bits beyond m must be zero (produce semantics).
          if (m % 64 != 0 && MaskWords(m) > 0) {
            const uint64_t tail = got[MaskWords(m) - 1] >> (m % 64);
            ASSERT_EQ(tail, 0u) << LevelName(kn.level) << " n=" << m;
          }
        }
      }
    }
  }
}

TEST(SimdKernelTest, PackKeys2x32MatchesScalar) {
  common::Rng rng(44);
  const Kernels& ref = internal::ScalarKernels();
  for (const size_t n : kSizes) {
    const auto hi = RandomCodes(&rng, n + 1, 1u << 30);
    const auto lo = RandomCodes(&rng, n + 1, 1u << 30);
    for (const size_t off : {size_t{0}, size_t{1}}) {
      if (off > n) continue;
      const size_t m = n - off;
      std::vector<uint64_t> want(m + 1, 0), got(m + 1, 0);
      for (const uint32_t* low : {lo.data() + off, (const uint32_t*)nullptr}) {
        ref.PackKeys2x32(hi.data() + off, low, m, want.data());
        for (const Level level : kLevels) {
          const Kernels& kn = KernelsFor(level);
          kn.PackKeys2x32(hi.data() + off, low, m, got.data());
          for (size_t i = 0; i < m; ++i) {
            ASSERT_EQ(want[i], got[i])
                << LevelName(kn.level) << " n=" << m << " i=" << i
                << " lo_null=" << (low == nullptr);
          }
        }
      }
    }
  }
}

TEST(SimdKernelTest, CountEq32MatchesScalar) {
  common::Rng rng(55);
  const Kernels& ref = internal::ScalarKernels();
  for (const size_t n : kSizes) {
    const auto data = RandomCodes(&rng, n + 1, 3);
    for (const size_t off : {size_t{0}, size_t{1}}) {
      if (off > n) continue;
      const size_t m = n - off;
      for (const uint32_t c : {0u, 1u, 2u, 9u}) {
        const size_t want = ref.CountEq32(data.data() + off, m, c);
        for (const Level level : kLevels) {
          const Kernels& kn = KernelsFor(level);
          ASSERT_EQ(want, kn.CountEq32(data.data() + off, m, c))
              << LevelName(kn.level) << " n=" << m << " c=" << c;
        }
      }
    }
  }
}

}  // namespace
}  // namespace semandaq::common::simd
