#include <gtest/gtest.h>

#include "relational/index.h"
#include "relational/update.h"
#include "test_util.h"

namespace semandaq::relational {
namespace {

Relation SampleRel() {
  return testing::MakeStringRelation("t", {"CNT", "ZIP", "CITY"},
                                     {
                                         {"UK", "EH2", "Edinburgh"},
                                         {"UK", "EH2", "Edinburgh"},
                                         {"UK", "W1", "London"},
                                         {"NL", "10", "Amsterdam"},
                                     });
}

TEST(HashIndexTest, BuildsGroups) {
  Relation rel = SampleRel();
  HashIndex idx(rel, {0, 1});
  EXPECT_EQ(idx.NumKeys(), 3u);
  Row key = {Value::String("UK"), Value::String("EH2")};
  EXPECT_EQ(idx.Lookup(key).size(), 2u);
  Row missing = {Value::String("DE"), Value::String("xx")};
  EXPECT_TRUE(idx.Lookup(missing).empty());
}

TEST(HashIndexTest, AddRemoveMaintainsBuckets) {
  Relation rel = SampleRel();
  HashIndex idx(rel, {0});
  Row uk = {Value::String("UK")};
  EXPECT_EQ(idx.Lookup(uk).size(), 3u);
  idx.Remove(0, rel.row(0));
  EXPECT_EQ(idx.Lookup(uk).size(), 2u);
  idx.Remove(1, rel.row(1));
  idx.Remove(2, rel.row(2));
  EXPECT_TRUE(idx.Lookup(uk).empty());
  EXPECT_EQ(idx.NumKeys(), 1u);  // only NL remains
  idx.Add(7, {Value::String("UK"), Value::String("x"), Value::String("y")});
  EXPECT_EQ(idx.Lookup(uk).size(), 1u);
  EXPECT_EQ(idx.Lookup(uk)[0], 7);
}

TEST(HashIndexTest, ForEachGroupVisitsAllKeys) {
  Relation rel = SampleRel();
  HashIndex idx(rel, {2});
  size_t groups = 0;
  size_t tuples = 0;
  idx.ForEachGroup([&](const Row&, const std::vector<TupleId>& ids) {
    ++groups;
    tuples += ids.size();
  });
  EXPECT_EQ(groups, 3u);
  EXPECT_EQ(tuples, 4u);
}

TEST(UpdateTest, ToStringDescribes) {
  EXPECT_NE(Update::Insert({Value::String("x")}).ToString().find("INSERT"),
            std::string::npos);
  EXPECT_NE(Update::DeleteTuple(3).ToString().find("DELETE #3"), std::string::npos);
  EXPECT_NE(Update::Modify(2, 1, Value::String("v")).ToString().find("MODIFY #2"),
            std::string::npos);
}

TEST(ApplyUpdatesTest, AppliesInOrder) {
  Relation rel = SampleRel();
  std::vector<TupleId> inserted;
  UpdateBatch batch = {
      Update::Insert({Value::String("US"), Value::String("606"),
                      Value::String("Chicago")}),
      Update::Modify(0, 2, Value::String("Leith")),
      Update::DeleteTuple(3),
  };
  ASSERT_OK(ApplyUpdates(batch, &rel, &inserted));
  ASSERT_EQ(inserted.size(), 1u);
  EXPECT_EQ(inserted[0], 4);
  EXPECT_EQ(rel.cell(0, 2).AsString(), "Leith");
  EXPECT_FALSE(rel.IsLive(3));
  EXPECT_EQ(rel.size(), 4u);
}

TEST(ApplyUpdatesTest, StopsAtFirstError) {
  Relation rel = SampleRel();
  UpdateBatch batch = {
      Update::Modify(0, 2, Value::String("ok")),
      Update::DeleteTuple(99),  // fails
      Update::Modify(1, 2, Value::String("never applied")),
  };
  EXPECT_FALSE(ApplyUpdates(batch, &rel).ok());
  EXPECT_EQ(rel.cell(0, 2).AsString(), "ok");
  EXPECT_EQ(rel.cell(1, 2).AsString(), "Edinburgh");
}

}  // namespace
}  // namespace semandaq::relational
