// Tests for the stateful delta-local repair engine and the incremental
// detector introspection it relies on.

#include <gtest/gtest.h>

#include "cfd/cfd_parser.h"
#include "common/random.h"
#include "detect/native_detector.h"
#include "repair/inc_repair.h"
#include "test_util.h"
#include "workload/customer_gen.h"

namespace semandaq::repair {
namespace {

using relational::Relation;
using relational::Row;
using relational::TupleId;
using relational::Update;
using relational::Value;

std::vector<cfd::Cfd> Parse(const std::string& text) {
  auto r = cfd::ParseCfdSet(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(*r) : std::vector<cfd::Cfd>{};
}

Row CleanUkRow(const char* name, const char* zip, const char* str) {
  return {Value::String(name), Value::String("UK"), Value::String("Edi"),
          Value::String(zip),  Value::String(str), Value::String("44"),
          Value::String("131")};
}

// ---------------------------------------------- detector introspection ---

TEST(DetectorIntrospectionTest, SinglesOfReportsConstantViolations) {
  Relation rel = semandaq::testing::PaperCustomerRelation();
  detect::IncrementalDetector det(&rel, Parse(semandaq::testing::PaperCfdText()));
  ASSERT_OK(det.Initialize());
  // Eve (6) violates phi4 (CFD index 1).
  auto singles = det.SinglesOf(6);
  ASSERT_EQ(singles.size(), 1u);
  EXPECT_EQ(singles[0].first, 1u);
  EXPECT_TRUE(det.SinglesOf(0).empty());
}

TEST(DetectorIntrospectionTest, ViolatingGroupsOfReportsBuckets) {
  Relation rel = semandaq::testing::PaperCustomerRelation();
  detect::IncrementalDetector det(&rel, Parse(semandaq::testing::PaperCfdText()));
  ASSERT_OK(det.Initialize());
  // Rick (1) sits in the EH2 4SD street group.
  auto groups = det.ViolatingGroupsOf(1);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].members->size(), 3u);
  EXPECT_EQ(groups[0].rhs_counts->size(), 2u);  // Mayfield Rd, Crichton St
  // Clean tuples report none.
  EXPECT_TRUE(det.ViolatingGroupsOf(4).empty());
  EXPECT_TRUE(det.ViolatingGroupsOf(999).empty());
}

// ------------------------------------------------------ IncRepairEngine ---

TEST(IncRepairEngineTest, RequiresStart) {
  Relation rel = semandaq::testing::PaperCustomerRelation();
  CostModel cm(rel.schema());
  IncRepairEngine engine(&rel, Parse(semandaq::testing::PaperCfdText()), cm);
  EXPECT_FALSE(engine.ApplyAndRepair({}).ok());
}

TEST(IncRepairEngineTest, RepairsDirtyInsertInPlace) {
  Relation rel = semandaq::testing::MakeStringRelation(
      "customer", {"NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"},
      {{"A", "UK", "Edi", "EH1", "HighSt", "44", "131"},
       {"B", "UK", "Edi", "EH1", "HighSt", "44", "131"}});
  CostModel cm(rel.schema());
  IncRepairEngine engine(&rel, Parse(semandaq::testing::PaperCfdText()), cm);
  ASSERT_OK(engine.Start());

  ASSERT_OK_AND_ASSIGN(
      IncBatchResult result,
      engine.ApplyAndRepair({Update::Insert(CleanUkRow("C", "EH1", "WrongSt"))}));
  EXPECT_EQ(result.remaining_violations, 0u);
  EXPECT_EQ(result.delta_tids, (std::vector<TupleId>{2}));
  // Fixed in place, and the change log explains it.
  EXPECT_EQ(rel.cell(2, 4).AsString(), "HighSt");
  ASSERT_EQ(result.changes.size(), 1u);
  EXPECT_EQ(result.changes[0].original, Value::String("WrongSt"));
  EXPECT_EQ(result.changes[0].repaired, Value::String("HighSt"));
  EXPECT_GT(result.total_cost, 0.0);
  // Base data untouched.
  EXPECT_EQ(rel.cell(0, 4).AsString(), "HighSt");
  EXPECT_EQ(rel.cell(1, 4).AsString(), "HighSt");
}

TEST(IncRepairEngineTest, RepairsConstantViolation) {
  Relation rel = semandaq::testing::MakeStringRelation(
      "customer", {"NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"},
      {{"A", "UK", "Edi", "EH1", "HighSt", "44", "131"}});
  CostModel cm(rel.schema());
  IncRepairEngine engine(&rel, Parse(semandaq::testing::PaperCfdText()), cm);
  ASSERT_OK(engine.Start());
  Row bad = {Value::String("D"), Value::String("US"), Value::String("NY"),
             Value::String("10011"), Value::String("Broadway"),
             Value::String("44"), Value::String("212")};
  ASSERT_OK_AND_ASSIGN(IncBatchResult result,
                       engine.ApplyAndRepair({Update::Insert(bad)}));
  EXPECT_EQ(result.remaining_violations, 0u);
  EXPECT_EQ(rel.cell(1, 1).AsString(), "UK");
}

TEST(IncRepairEngineTest, SequentialBatchesStayConsistent) {
  Relation rel = semandaq::testing::MakeStringRelation(
      "customer", {"NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"},
      {{"A", "UK", "Edi", "EH1", "HighSt", "44", "131"},
       {"B", "UK", "Edi", "EH1", "HighSt", "44", "131"}});
  auto cfds = Parse(semandaq::testing::PaperCfdText());
  CostModel cm(rel.schema());
  IncRepairEngine engine(&rel, cfds, cm);
  ASSERT_OK(engine.Start());

  for (int i = 0; i < 5; ++i) {
    const std::string name = "N" + std::to_string(i);
    ASSERT_OK_AND_ASSIGN(
        IncBatchResult result,
        engine.ApplyAndRepair(
            {Update::Insert(CleanUkRow(name.c_str(), "EH1",
                                       ("Wrong" + std::to_string(i)).c_str()))}));
    EXPECT_EQ(result.remaining_violations, 0u) << "batch " << i;
    // Full re-detection agrees the relation is clean.
    detect::NativeDetector fresh(&rel, cfds);
    ASSERT_OK_AND_ASSIGN(auto table, fresh.Detect());
    EXPECT_EQ(table.TotalVio(), 0) << "batch " << i;
  }
}

TEST(IncRepairEngineTest, AllDeltaGroupUsesCostConsensus) {
  // Empty base; two inserted tuples disagree. With no frozen values, the
  // engine picks a consensus value among the delta itself.
  Relation rel{"customer",
               relational::Schema::AllStrings(
                   {"NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"})};
  auto cfds = Parse(semandaq::testing::PaperCfdText());
  CostModel cm(rel.schema());
  IncRepairEngine engine(&rel, cfds, cm);
  ASSERT_OK(engine.Start());
  ASSERT_OK_AND_ASSIGN(
      IncBatchResult result,
      engine.ApplyAndRepair({Update::Insert(CleanUkRow("A", "EH1", "HighSt")),
                             Update::Insert(CleanUkRow("B", "EH1", "HighStX"))}));
  EXPECT_EQ(result.remaining_violations, 0u);
  EXPECT_EQ(rel.cell(0, 4), rel.cell(1, 4));
}

TEST(IncRepairEngineTest, ModifiedTupleBecomesMutable) {
  Relation rel = semandaq::testing::MakeStringRelation(
      "customer", {"NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"},
      {{"A", "UK", "Edi", "EH1", "HighSt", "44", "131"},
       {"B", "UK", "Edi", "EH1", "HighSt", "44", "131"}});
  auto cfds = Parse(semandaq::testing::PaperCfdText());
  CostModel cm(rel.schema());
  IncRepairEngine engine(&rel, cfds, cm);
  ASSERT_OK(engine.Start());
  ASSERT_OK_AND_ASSIGN(
      IncBatchResult result,
      engine.ApplyAndRepair({Update::Modify(1, 4, Value::String("Oops"))}));
  EXPECT_EQ(result.remaining_violations, 0u);
  EXPECT_EQ(rel.cell(1, 4).AsString(), "HighSt");
}

TEST(IncRepairEngineTest, RandomizedBatchesAgainstFullDetection) {
  workload::CustomerWorkloadOptions opts;
  opts.num_tuples = 400;
  opts.noise_rate = 0.0;
  opts.seed = 55;
  auto wl = workload::CustomerGenerator::Generate(opts);
  auto cfds = Parse(workload::CustomerGenerator::PaperCfds());
  CostModel cm(wl.clean.schema());
  IncRepairEngine engine(&wl.clean, cfds, cm);
  ASSERT_OK(engine.Start());

  common::Rng rng(77);
  std::vector<TupleId> live = wl.clean.LiveIds();
  for (int round = 0; round < 10; ++round) {
    relational::UpdateBatch batch;
    for (int i = 0; i < 5; ++i) {
      Row row = wl.clean.row(live[rng.NextIndex(live.size())]);
      row[0] = Value::String("R" + std::to_string(round) + "_" + std::to_string(i));
      // Corrupt one non-name cell half the time.
      if (rng.NextBool(0.5)) {
        row[1 + rng.NextIndex(6)] = Value::String(rng.NextString(4));
      }
      batch.push_back(Update::Insert(std::move(row)));
    }
    ASSERT_OK_AND_ASSIGN(IncBatchResult result, engine.ApplyAndRepair(batch));
    (void)result;
    detect::NativeDetector fresh(&wl.clean, cfds);
    ASSERT_OK_AND_ASSIGN(auto table, fresh.Detect());
    EXPECT_EQ(table.TotalVio(), 0) << "round " << round;
  }
}

}  // namespace
}  // namespace semandaq::repair
