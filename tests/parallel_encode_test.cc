// The parallel encode fan-out (EncodedRelation::set_thread_pool): column
// dictionaries are independent and codes are issued in row order within one
// column regardless of which lane encodes it, so the parallel rebuild and
// the parallel append-Sync must be *byte-identical* to their serial
// counterparts — same dictionaries, same code columns, for every lane count.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "relational/encoded_relation.h"
#include "test_util.h"
#include "workload/customer_gen.h"

namespace semandaq::relational {
namespace {

workload::CustomerWorkload MakeWorkload(size_t tuples) {
  workload::CustomerWorkloadOptions opts;
  opts.num_tuples = tuples;
  opts.noise_rate = 0.07;
  return workload::CustomerGenerator::Generate(opts);
}

void ExpectIdenticalEncoding(const EncodedRelation& a, const EncodedRelation& b) {
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    EXPECT_EQ(a.column(c), b.column(c)) << "column " << c;
    EXPECT_EQ(a.dictionary(c).values(), b.dictionary(c).values())
        << "dictionary " << c;
  }
}

TEST(ParallelEncodeTest, RebuildIdenticalToSerialForEveryLaneCount) {
  // Big enough to clear the parallel-dispatch threshold (7 columns x 4000
  // rows of cells).
  const auto wl = MakeWorkload(4000);
  const EncodedRelation serial(&wl.dirty);
  for (const size_t lanes : {2u, 3u, 8u}) {
    common::ThreadPool pool(lanes);
    const EncodedRelation parallel(&wl.dirty, &pool);
    ExpectIdenticalEncoding(serial, parallel);
  }
}

TEST(ParallelEncodeTest, AppendSyncIdenticalToSerial) {
  auto wl_a = MakeWorkload(3000);
  auto wl_b = MakeWorkload(3000);  // same seed => identical twin relation
  common::ThreadPool pool(4);
  EncodedRelation serial(&wl_a.dirty);
  EncodedRelation parallel(&wl_b.dirty, &pool);

  // Append a fresh batch to both twins; the parallel Sync must produce the
  // codes the serial Sync does.
  const auto extra = MakeWorkload(2500);
  extra.dirty.ForEach([&](TupleId, const Row& row) {
    wl_a.dirty.MustInsert(row);
    wl_b.dirty.MustInsert(row);
  });
  serial.Sync();
  parallel.Sync();
  EXPECT_TRUE(serial.InSync());
  EXPECT_TRUE(parallel.InSync());
  ExpectIdenticalEncoding(serial, parallel);
}

TEST(ParallelEncodeTest, SmallRelationsStaySerialButCorrect) {
  // Below the cell threshold the pool is ignored; the result is still the
  // same (this pins the threshold from quietly changing semantics).
  Relation rel = semandaq::testing::PaperCustomerRelation();
  common::ThreadPool pool(4);
  const EncodedRelation serial(&rel);
  const EncodedRelation parallel(&rel, &pool);
  ExpectIdenticalEncoding(serial, parallel);
}

}  // namespace
}  // namespace semandaq::relational
