#include <gtest/gtest.h>

#include "relational/database.h"
#include "relational/relation.h"
#include "relational/schema.h"
#include "test_util.h"

namespace semandaq::relational {
namespace {

TEST(SchemaTest, AllStringsBuildsNamedColumns) {
  Schema s = Schema::AllStrings({"A", "B", "C"});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.attr(1).name, "B");
  EXPECT_EQ(s.attr(1).type, DataType::kString);
}

TEST(SchemaTest, IndexOfIsCaseInsensitive) {
  Schema s = Schema::AllStrings({"CNT", "ZIP"});
  EXPECT_EQ(s.IndexOf("cnt"), 0);
  EXPECT_EQ(s.IndexOf("Zip"), 1);
  EXPECT_EQ(s.IndexOf("missing"), -1);
}

TEST(SchemaTest, RequireIndexOfReportsSchema) {
  Schema s = Schema::AllStrings({"A"});
  auto r = s.RequireIndexOf("B");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("B"), std::string::npos);
}

TEST(SchemaTest, DuplicateAttributeRejected) {
  Schema s = Schema::AllStrings({"A"});
  EXPECT_FALSE(s.AddAttribute({"a", DataType::kInt, {}}).ok());
  EXPECT_OK(s.AddAttribute({"B", DataType::kInt, {}}));
}

TEST(SchemaTest, EqualsIgnoresCaseRequiresTypes) {
  Schema a = Schema::AllStrings({"X", "Y"});
  Schema b = Schema::AllStrings({"x", "y"});
  EXPECT_TRUE(a.Equals(b));
  Schema c;
  ASSERT_OK(c.AddAttribute({"X", DataType::kInt, {}}));
  ASSERT_OK(c.AddAttribute({"Y", DataType::kString, {}}));
  EXPECT_FALSE(a.Equals(c));
}

TEST(SchemaTest, FiniteDomainFlag) {
  AttributeDef def{"FLAG", DataType::kString,
                   {Value::String("Y"), Value::String("N")}};
  EXPECT_TRUE(def.has_finite_domain());
  AttributeDef open{"NAME", DataType::kString, {}};
  EXPECT_FALSE(open.has_finite_domain());
}

TEST(RelationTest, InsertAssignsSequentialIds) {
  Relation rel{"t", Schema::AllStrings({"A"})};
  ASSERT_OK_AND_ASSIGN(TupleId t0, rel.Insert({Value::String("x")}));
  ASSERT_OK_AND_ASSIGN(TupleId t1, rel.Insert({Value::String("y")}));
  EXPECT_EQ(t0, 0);
  EXPECT_EQ(t1, 1);
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_EQ(rel.IdBound(), 2);
}

TEST(RelationTest, ArityMismatchRejected) {
  Relation rel{"t", Schema::AllStrings({"A", "B"})};
  auto r = rel.Insert({Value::String("only one")});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(rel.size(), 0u);
}

TEST(RelationTest, DeleteTombstonesButKeepsIds) {
  Relation rel{"t", Schema::AllStrings({"A"})};
  const TupleId t0 = rel.MustInsert({Value::String("x")});
  const TupleId t1 = rel.MustInsert({Value::String("y")});
  ASSERT_OK(rel.Delete(t0));
  EXPECT_FALSE(rel.IsLive(t0));
  EXPECT_TRUE(rel.IsLive(t1));
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_EQ(rel.IdBound(), 2);  // ids are never reused
  const TupleId t2 = rel.MustInsert({Value::String("z")});
  EXPECT_EQ(t2, 2);
}

TEST(RelationTest, DoubleDeleteFails) {
  Relation rel{"t", Schema::AllStrings({"A"})};
  const TupleId t0 = rel.MustInsert({Value::String("x")});
  ASSERT_OK(rel.Delete(t0));
  EXPECT_FALSE(rel.Delete(t0).ok());
  EXPECT_FALSE(rel.Delete(99).ok());
}

TEST(RelationTest, SetCellUpdatesValue) {
  Relation rel{"t", Schema::AllStrings({"A", "B"})};
  const TupleId t0 = rel.MustInsert({Value::String("x"), Value::String("y")});
  ASSERT_OK(rel.SetCell(t0, 1, Value::String("z")));
  EXPECT_EQ(rel.cell(t0, 1).AsString(), "z");
  EXPECT_FALSE(rel.SetCell(t0, 5, Value::Null()).ok());
  EXPECT_FALSE(rel.SetCell(42, 0, Value::Null()).ok());
}

TEST(RelationTest, ForEachSkipsDead) {
  Relation rel{"t", Schema::AllStrings({"A"})};
  rel.MustInsert({Value::String("a")});
  const TupleId t1 = rel.MustInsert({Value::String("b")});
  rel.MustInsert({Value::String("c")});
  ASSERT_OK(rel.Delete(t1));
  std::vector<TupleId> seen;
  rel.ForEach([&](TupleId tid, const Row&) { seen.push_back(tid); });
  EXPECT_EQ(seen, (std::vector<TupleId>{0, 2}));
  EXPECT_EQ(rel.LiveIds(), (std::vector<TupleId>{0, 2}));
}

TEST(RelationTest, ProjectSelectsColumns) {
  Relation rel{"t", Schema::AllStrings({"A", "B", "C"})};
  const TupleId t0 = rel.MustInsert(
      {Value::String("1"), Value::String("2"), Value::String("3")});
  Row p = rel.Project(t0, {2, 0});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0].AsString(), "3");
  EXPECT_EQ(p[1].AsString(), "1");
}

TEST(RelationTest, CloneIsDeepAndPreservesIds) {
  Relation rel{"t", Schema::AllStrings({"A"})};
  rel.MustInsert({Value::String("x")});
  const TupleId t1 = rel.MustInsert({Value::String("y")});
  ASSERT_OK(rel.Delete(t1));
  Relation copy = rel.Clone();
  ASSERT_OK(copy.SetCell(0, 0, Value::String("changed")));
  EXPECT_EQ(rel.cell(0, 0).AsString(), "x");
  EXPECT_EQ(copy.cell(0, 0).AsString(), "changed");
  EXPECT_FALSE(copy.IsLive(t1));
}

TEST(RelationTest, AsciiTableRendersHeaderAndRows) {
  Relation rel = testing::MakeStringRelation("t", {"A", "B"}, {{"x", "y"}});
  const std::string table = rel.ToAsciiTable();
  EXPECT_NE(table.find("A"), std::string::npos);
  EXPECT_NE(table.find("| x"), std::string::npos);
}

TEST(RelationTest, AsciiTableTruncates) {
  Relation rel{"t", Schema::AllStrings({"A"})};
  for (int i = 0; i < 30; ++i) rel.MustInsert({Value::String("v")});
  const std::string table = rel.ToAsciiTable(5);
  EXPECT_NE(table.find("25 more tuple(s)"), std::string::npos);
}

TEST(DatabaseTest, AddFindDrop) {
  Database db;
  ASSERT_OK(db.AddRelation(testing::MakeStringRelation("t1", {"A"}, {{"x"}})));
  EXPECT_TRUE(db.HasRelation("T1"));  // case-insensitive
  EXPECT_NE(db.FindRelation("t1"), nullptr);
  EXPECT_EQ(db.FindRelation("nope"), nullptr);
  EXPECT_FALSE(db.AddRelation(testing::MakeStringRelation("T1", {"A"}, {})).ok());
  ASSERT_OK(db.DropRelation("t1"));
  EXPECT_FALSE(db.HasRelation("t1"));
  EXPECT_FALSE(db.DropRelation("t1").ok());
}

TEST(DatabaseTest, PutReplaces) {
  Database db;
  db.PutRelation(testing::MakeStringRelation("t", {"A"}, {{"x"}}));
  db.PutRelation(testing::MakeStringRelation("t", {"A"}, {{"y"}, {"z"}}));
  EXPECT_EQ(db.FindRelation("t")->size(), 2u);
  EXPECT_EQ(db.size(), 1u);
}

TEST(DatabaseTest, NamesInRegistrationOrder) {
  Database db;
  ASSERT_OK(db.AddRelation(testing::MakeStringRelation("b", {"A"}, {})));
  ASSERT_OK(db.AddRelation(testing::MakeStringRelation("a", {"A"}, {})));
  EXPECT_EQ(db.RelationNames(), (std::vector<std::string>{"b", "a"}));
}

TEST(DatabaseTest, EmptyNameRejected) {
  Database db;
  EXPECT_FALSE(db.AddRelation(Relation{"", Schema::AllStrings({"A"})}).ok());
}

}  // namespace
}  // namespace semandaq::relational
