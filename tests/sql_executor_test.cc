#include <gtest/gtest.h>

#include "relational/database.h"
#include "sql/engine.h"
#include "test_util.h"

namespace semandaq::sql {
namespace {

using relational::Database;
using relational::Relation;
using relational::Row;
using relational::Value;

class SqlExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.AddRelation(semandaq::testing::MakeStringRelation(
        "customer", {"NAME", "CNT", "ZIP", "CITY"},
        {
            {"Mike", "UK", "EH2", "Edinburgh"},
            {"Rick", "UK", "EH2", "Edinburgh"},
            {"Joe", "UK", "W1", "London"},
            {"Anna", "NL", "10", "Amsterdam"},
            {"Null", "", "Z9", "Nowhere"},  // NULL CNT
        })));

    Relation nums{"nums", [] {
                    relational::Schema s;
                    (void)s.AddAttribute({"K", relational::DataType::kInt, {}});
                    (void)s.AddAttribute({"V", relational::DataType::kDouble, {}});
                    return s;
                  }()};
    nums.MustInsert({Value::Int(1), Value::Double(1.5)});
    nums.MustInsert({Value::Int(2), Value::Double(2.5)});
    nums.MustInsert({Value::Int(3), Value::Null()});
    ASSERT_OK(db_.AddRelation(std::move(nums)));

    ASSERT_OK(db_.AddRelation(semandaq::testing::MakeStringRelation(
        "country", {"CODE", "NAME2"},
        {{"UK", "United Kingdom"}, {"NL", "Netherlands"}})));
  }

  Relation Run(const std::string& sql) {
    Engine engine(&db_);
    auto r = engine.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(*r) : Relation{};
  }

  Database db_;
};

TEST_F(SqlExecutorTest, SelectStarPreservesRows) {
  Relation r = Run("SELECT * FROM customer");
  EXPECT_EQ(r.size(), 5u);
  EXPECT_EQ(r.schema().size(), 4u);
}

TEST_F(SqlExecutorTest, ProjectionAndAlias) {
  Relation r = Run("SELECT NAME AS who, CITY FROM customer WHERE ZIP = 'W1'");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.schema().attr(0).name, "who");
  EXPECT_EQ(r.cell(0, 0).AsString(), "Joe");
  EXPECT_EQ(r.cell(0, 1).AsString(), "London");
}

TEST_F(SqlExecutorTest, WhereComparisonsAndLogic) {
  EXPECT_EQ(Run("SELECT * FROM customer WHERE CNT = 'UK'").size(), 3u);
  EXPECT_EQ(Run("SELECT * FROM customer WHERE CNT = 'UK' AND ZIP = 'EH2'").size(), 2u);
  EXPECT_EQ(Run("SELECT * FROM customer WHERE CNT = 'UK' OR CNT = 'NL'").size(), 4u);
  EXPECT_EQ(Run("SELECT * FROM customer WHERE NOT (CNT = 'UK')").size(), 1u);
  EXPECT_EQ(Run("SELECT * FROM customer WHERE CNT <> 'UK'").size(), 1u);
}

TEST_F(SqlExecutorTest, NullSemantics) {
  // NULL CNT: neither = nor <> matches, IS NULL does.
  EXPECT_EQ(Run("SELECT * FROM customer WHERE CNT IS NULL").size(), 1u);
  EXPECT_EQ(Run("SELECT * FROM customer WHERE CNT IS NOT NULL").size(), 4u);
  // NOT of unknown is unknown: still excluded.
  EXPECT_EQ(Run("SELECT * FROM customer WHERE NOT (CNT = 'UK')").size(), 1u);
  // OR with IS NULL recovers the tuple (the detection-query pattern).
  EXPECT_EQ(Run("SELECT * FROM customer WHERE CNT = 'UK' OR CNT IS NULL").size(), 4u);
}

TEST_F(SqlExecutorTest, LikeAndInPredicates) {
  EXPECT_EQ(Run("SELECT * FROM customer WHERE CITY LIKE 'E%'").size(), 2u);
  EXPECT_EQ(Run("SELECT * FROM customer WHERE CITY LIKE '%dam'").size(), 1u);
  EXPECT_EQ(Run("SELECT * FROM customer WHERE ZIP IN ('EH2', 'W1')").size(), 3u);
  EXPECT_EQ(Run("SELECT * FROM customer WHERE ZIP NOT IN ('EH2')").size(), 3u);
}

TEST_F(SqlExecutorTest, NumericComparisonAndArithmetic) {
  EXPECT_EQ(Run("SELECT * FROM nums WHERE K > 1").size(), 2u);
  EXPECT_EQ(Run("SELECT * FROM nums WHERE K BETWEEN 2 AND 3").size(), 2u);
  Relation r = Run("SELECT K + 1 AS k1, V * 2 AS v2 FROM nums WHERE K = 1");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.cell(0, 0).AsInt(), 2);
  EXPECT_DOUBLE_EQ(r.cell(0, 1).AsDouble(), 3.0);
}

TEST_F(SqlExecutorTest, ArithmeticNullPropagates) {
  Relation r = Run("SELECT V + 1 FROM nums WHERE K = 3");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.cell(0, 0).is_null());
}

TEST_F(SqlExecutorTest, TidPseudoColumn) {
  Relation r = Run("SELECT __tid, NAME FROM customer WHERE NAME = 'Joe'");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.cell(0, 0).AsInt(), 2);
}

TEST_F(SqlExecutorTest, CrossJoinCounts) {
  Relation r = Run("SELECT * FROM customer, country");
  EXPECT_EQ(r.size(), 10u);
  EXPECT_EQ(r.schema().size(), 6u);
}

TEST_F(SqlExecutorTest, HashJoinOnEquality) {
  Relation r = Run(
      "SELECT c.NAME, k.NAME2 FROM customer c, country k WHERE c.CNT = k.CODE "
      "ORDER BY c.NAME");
  ASSERT_EQ(r.size(), 4u);  // NULL CNT never joins
  EXPECT_EQ(r.cell(0, 0).AsString(), "Anna");
  EXPECT_EQ(r.cell(0, 1).AsString(), "Netherlands");
}

TEST_F(SqlExecutorTest, InnerJoinSugar) {
  Relation r =
      Run("SELECT c.NAME FROM customer c INNER JOIN country k ON c.CNT = k.CODE");
  EXPECT_EQ(r.size(), 4u);
}

TEST_F(SqlExecutorTest, SelfJoinWithAliases) {
  Relation r = Run(
      "SELECT a.NAME, b.NAME FROM customer a, customer b "
      "WHERE a.ZIP = b.ZIP AND a.CITY <> b.CITY");
  EXPECT_EQ(r.size(), 0u);  // ZIP determines CITY in this instance
}

TEST_F(SqlExecutorTest, AggregatesGlobal) {
  Relation r = Run(
      "SELECT COUNT(*), COUNT(CNT), COUNT(DISTINCT CNT), MIN(NAME), MAX(NAME) "
      "FROM customer");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.cell(0, 0).AsInt(), 5);
  EXPECT_EQ(r.cell(0, 1).AsInt(), 4);  // COUNT skips NULL
  EXPECT_EQ(r.cell(0, 2).AsInt(), 2);  // UK, NL
  EXPECT_EQ(r.cell(0, 3).AsString(), "Anna");
  EXPECT_EQ(r.cell(0, 4).AsString(), "Rick");
}

TEST_F(SqlExecutorTest, SumAvgOverNumbers) {
  Relation r = Run("SELECT SUM(K), AVG(V) FROM nums");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.cell(0, 0).AsInt(), 6);
  EXPECT_DOUBLE_EQ(r.cell(0, 1).AsDouble(), 2.0);  // (1.5 + 2.5) / 2, NULL skipped
}

TEST_F(SqlExecutorTest, EmptyGlobalAggregateYieldsOneRow) {
  Relation r = Run("SELECT COUNT(*), SUM(K) FROM nums WHERE K > 100");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.cell(0, 0).AsInt(), 0);
  EXPECT_TRUE(r.cell(0, 1).is_null());
}

TEST_F(SqlExecutorTest, GroupByWithHaving) {
  Relation r = Run(
      "SELECT CNT, COUNT(*) AS n FROM customer WHERE CNT IS NOT NULL "
      "GROUP BY CNT HAVING COUNT(*) > 1");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.cell(0, 0).AsString(), "UK");
  EXPECT_EQ(r.cell(0, 1).AsInt(), 3);
}

TEST_F(SqlExecutorTest, GroupByCountDistinctHavingDetectionShape) {
  // The exact Q_V shape: keys with more than one distinct RHS.
  Relation r = Run(
      "SELECT CNT, ZIP FROM customer GROUP BY CNT, ZIP "
      "HAVING COUNT(DISTINCT CITY) > 1");
  EXPECT_EQ(r.size(), 0u);  // instance is consistent on (CNT, ZIP) -> CITY
}

TEST_F(SqlExecutorTest, DistinctDeduplicates) {
  Relation r = Run("SELECT DISTINCT CNT FROM customer WHERE CNT IS NOT NULL");
  EXPECT_EQ(r.size(), 2u);
}

TEST_F(SqlExecutorTest, OrderByMultipleKeysAndLimit) {
  Relation r = Run("SELECT NAME, CNT FROM customer ORDER BY CNT DESC, NAME LIMIT 2");
  ASSERT_EQ(r.size(), 2u);
  // CNT DESC puts UK first (strings sort after NULL/NL); NAME ties break asc.
  EXPECT_EQ(r.cell(0, 0).AsString(), "Joe");
  EXPECT_EQ(r.cell(1, 0).AsString(), "Mike");
}

TEST_F(SqlExecutorTest, OrderByNullsFirst) {
  Relation r = Run("SELECT CNT FROM customer ORDER BY CNT");
  ASSERT_EQ(r.size(), 5u);
  EXPECT_TRUE(r.cell(0, 0).is_null());
}

TEST_F(SqlExecutorTest, DuplicateOutputNamesUniquified) {
  Relation r = Run("SELECT NAME, NAME FROM customer LIMIT 1");
  EXPECT_EQ(r.schema().attr(0).name, "NAME");
  EXPECT_EQ(r.schema().attr(1).name, "NAME_2");
}

TEST_F(SqlExecutorTest, BinderErrors) {
  Engine engine(&db_);
  EXPECT_FALSE(engine.Query("SELECT * FROM missing").ok());
  EXPECT_FALSE(engine.Query("SELECT nope FROM customer").ok());
  EXPECT_FALSE(engine.Query("SELECT x.NAME FROM customer").ok());
  // Ambiguous: NAME exists on both sides of a self join.
  EXPECT_FALSE(engine.Query("SELECT NAME FROM customer a, customer b").ok());
  // Aggregates are not allowed in WHERE.
  EXPECT_FALSE(engine.Query("SELECT * FROM customer WHERE COUNT(*) > 1").ok());
  // Unknown function.
  EXPECT_FALSE(engine.Query("SELECT FOO(NAME) FROM customer").ok());
  // HAVING without aggregation.
  EXPECT_FALSE(engine.Query("SELECT NAME FROM customer HAVING NAME = 'x'").ok());
  // Duplicate FROM alias.
  EXPECT_FALSE(engine.Query("SELECT * FROM customer c, country c").ok());
}

TEST_F(SqlExecutorTest, StringsAreNotBooleans) {
  Engine engine(&db_);
  EXPECT_FALSE(engine.Query("SELECT * FROM customer WHERE NAME").ok());
}

TEST_F(SqlExecutorTest, DeadTuplesInvisible) {
  relational::Relation* rel = db_.FindMutableRelation("customer");
  ASSERT_OK(rel->Delete(0));
  EXPECT_EQ(Run("SELECT * FROM customer").size(), 4u);
}

}  // namespace
}  // namespace semandaq::sql
