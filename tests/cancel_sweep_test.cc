// Cancellation determinism sweep (common/cancel): the contract a
// CancelToken buys is "byte-identical or never happened". For each
// cancellable operation — detect, mine, clean, opendb — we first run a
// census pass that counts every checkpoint the operation crosses, then
// replay the operation once per checkpoint with the token armed to trip
// exactly there. Every replay must either produce the baseline result
// bit-for-bit (the cancel arrived after the last checkpoint that
// mattered) or fail with Cancelled/DeadlineExceeded while leaving all
// observable state — the master relation, the facade catalog — exactly
// as it was.

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cfd/cfd_parser.h"
#include "common/cancel.h"
#include "common/status.h"
#include "core/semandaq.h"
#include "detect/native_detector.h"
#include "discovery/cfd_miner.h"
#include "repair/batch_repair.h"
#include "repair/cost_model.h"
#include "test_util.h"

namespace semandaq {
namespace {

using common::CancelToken;
using common::StatusCode;
using core::Semandaq;
using relational::Relation;
using relational::RowToString;

std::vector<cfd::Cfd> Parse(const std::string& text) {
  auto r = cfd::ParseCfdSet(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(*r) : std::vector<cfd::Cfd>{};
}

// ------------------------------------------------------- token unit tests

TEST(CancelTokenTest, UnarmedCheckIsOkAndUncounted) {
  CancelToken token;
  for (int i = 0; i < 3; ++i) EXPECT_OK(token.Check());
  // The unarmed fast path is one relaxed load; it must not even count.
  EXPECT_EQ(token.CheckCount(), 0u);
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelTokenTest, CancelIsSticky) {
  CancelToken token;
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  for (int i = 0; i < 3; ++i) {
    const common::Status st = token.Check();
    EXPECT_EQ(st.code(), StatusCode::kCancelled);
  }
}

TEST(CancelTokenTest, ExpiredDeadlineLatchesDeadlineExceeded) {
  CancelToken token;
  token.set_deadline_after_ms(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
  // Latched: every later checkpoint reports the same cause, so one
  // operation never tears down half-Cancelled and half-DeadlineExceeded.
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelTokenTest, ZeroDeadlineMeansNone) {
  CancelToken token;
  token.set_deadline_after_ms(0);
  EXPECT_OK(token.Check());
  EXPECT_EQ(token.CheckCount(), 0u);  // still unarmed
}

TEST(CancelTokenTest, CancelAfterChecksCountsDown) {
  CancelToken token;
  token.CancelAfterChecks(3);
  EXPECT_OK(token.Check());
  EXPECT_OK(token.Check());
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);  // sticky
  EXPECT_GE(token.CheckCount(), 3u);
}

TEST(CancelTokenTest, FutureDeadlinePassesChecksUntilItExpires) {
  CancelToken token;
  token.set_deadline_after_ms(60000);
  EXPECT_OK(token.Check());
  EXPECT_EQ(token.CheckCount(), 1u);  // armed checks are counted
}

// ------------------------------------------------------ sweep scaffolding

/// Canonical rendering of a ViolationTable: everything the detector
/// publishes, in emission order. Two tables with equal fingerprints are
/// interchangeable for every consumer in the repo.
std::string Fingerprint(const detect::ViolationTable& table) {
  std::ostringstream out;
  out << table.Summary() << '\n';
  for (const auto& s : table.singles()) {
    out << "single " << s.tid << ' ' << s.cfd_index << ' ' << s.pattern_index
        << '\n';
  }
  for (const auto& g : table.groups()) {
    out << "group " << g.fd_group << ' ' << g.cfd_index << ' '
        << RowToString(g.lhs_key) << " members";
    for (auto tid : g.members) out << ' ' << tid;
    out << " partners";
    for (auto p : g.member_partners) out << ' ' << p;
    out << '\n';
  }
  return out.str();
}

/// Canonical rendering of a relation's live contents.
std::string Fingerprint(const Relation& rel) {
  std::ostringstream out;
  out << rel.name() << '/' << rel.size() << '\n';
  for (auto tid : rel.LiveIds()) out << tid << ' ' << RowToString(rel.row(tid)) << '\n';
  return out.str();
}

std::string Fingerprint(const std::vector<cfd::Cfd>& cfds) {
  std::ostringstream out;
  for (const auto& c : cfds) out << c.ToString() << '\n';
  return out.str();
}

/// The sweep driver. `op` runs the operation under a token and returns a
/// fingerprint of its published result; it must also verify, on failure,
/// that nothing observable changed (the no-partial-state half of the
/// contract). The census pass arms the token with an unreachable
/// countdown so every checkpoint is counted without tripping.
template <typename Op>
void SweepCheckpoints(const char* label, Op op) {
  CancelToken census;
  census.CancelAfterChecks(UINT64_MAX);
  auto baseline = op(&census);
  ASSERT_TRUE(baseline.ok()) << label << ": " << baseline.status().ToString();
  const uint64_t checkpoints = census.CheckCount();
  ASSERT_GT(checkpoints, 0u)
      << label << " crossed no cancellation checkpoints — the loop is "
      << "uncancellable and the sweep is vacuous";

  // Injecting at every checkpoint is O(n^2) work; past a few hundred the
  // marginal coverage is runtime, not confidence. Stride but always hit
  // the first and last checkpoint.
  const uint64_t stride = checkpoints > 256 ? checkpoints / 256 : 1;
  uint64_t injected = 0;
  for (uint64_t k = 1; k <= checkpoints; k = (k == checkpoints ? k + 1 : std::min(k + stride, checkpoints))) {
    SCOPED_TRACE(std::string(label) + " cancel@" + std::to_string(k) + "/" +
                 std::to_string(checkpoints));
    CancelToken token;
    token.CancelAfterChecks(k);
    auto replay = op(&token);
    if (replay.ok()) {
      // The cancel landed after the operation's last checkpoint: the
      // result must be byte-identical to the uncancelled baseline.
      EXPECT_EQ(*replay, *baseline);
    } else {
      EXPECT_EQ(replay.status().code(), StatusCode::kCancelled)
          << replay.status().ToString();
    }
    ++injected;
  }
  ASSERT_GE(injected, std::min<uint64_t>(checkpoints, 2u));
}

// -------------------------------------------------------------- the sweeps

TEST(CancelSweepTest, DetectIsAllOrNothing) {
  const Relation rel = testing::PaperCustomerRelation();
  const std::string before = Fingerprint(rel);
  SweepCheckpoints("detect", [&](CancelToken* token)
                                 -> common::Result<std::string> {
    detect::DetectorOptions options;
    options.cancel = token;
    detect::NativeDetector detector(&rel, Parse(testing::PaperCfdText()),
                                    options);
    auto table = detector.Detect();
    EXPECT_EQ(Fingerprint(rel), before);  // detection never writes
    if (!table.ok()) return table.status();
    return Fingerprint(*table);
  });
}

TEST(CancelSweepTest, DetectShardedIsAllOrNothing) {
  const Relation rel = testing::PaperCustomerRelation();
  SweepCheckpoints("detect-sharded", [&](CancelToken* token)
                                         -> common::Result<std::string> {
    detect::DetectorOptions options;
    options.cancel = token;
    options.num_threads = 4;
    detect::NativeDetector detector(&rel, Parse(testing::PaperCfdText()),
                                    options);
    auto table = detector.Detect();
    if (!table.ok()) return table.status();
    return Fingerprint(*table);
  });
}

TEST(CancelSweepTest, MineIsAllOrNothing) {
  const Relation rel = testing::PaperCustomerRelation();
  const std::string before = Fingerprint(rel);
  SweepCheckpoints("mine", [&](CancelToken* token)
                               -> common::Result<std::string> {
    discovery::CfdMinerOptions options;
    options.max_lhs = 2;
    options.min_support = 2;
    options.cancel = token;
    discovery::CfdMiner miner(&rel, options);
    auto mined = miner.Mine();
    EXPECT_EQ(Fingerprint(rel), before);  // mining never writes
    if (!mined.ok()) return mined.status();
    return Fingerprint(*mined);
  });
}

TEST(CancelSweepTest, CleanLeavesTheMasterUntouched) {
  const Relation master = testing::PaperCustomerRelation();
  const std::string before = Fingerprint(master);
  SweepCheckpoints("clean", [&](CancelToken* token)
                                -> common::Result<std::string> {
    repair::RepairOptions options;
    options.cancel = token;
    repair::BatchRepair cleaner(
        &master, Parse(testing::PaperCfdText()),
        repair::CostModel(master.schema()), options);
    auto result = cleaner.Run();
    // The engine repairs a private clone; the master must be untouched
    // whether the run finished or was cancelled mid-round.
    EXPECT_EQ(Fingerprint(master), before);
    if (!result.ok()) return result.status();
    std::ostringstream out;
    out << Fingerprint(result->repaired) << "cost " << result->total_cost
        << " iters " << result->iterations << " escapes "
        << result->null_escapes << '\n';
    for (const auto& c : result->changes) {
      out << "change " << c.tid << ' ' << c.col << ' '
          << RowToString({c.original}) << " -> " << RowToString({c.repaired})
          << '\n';
    }
    return out.str();
  });
}

TEST(CancelSweepTest, OpenDatabaseUnwindsOnCancel) {
  // Build a one-relation database on disk, then sweep cancelling opendb.
  const std::string dir = ::testing::TempDir() + "cancel_sweep_db";
  {
    Semandaq sys;
    ASSERT_OK(sys.Connect(testing::PaperCustomerRelation()));
    ASSERT_TRUE(sys.SaveDatabase(dir).ok());
  }
  SweepCheckpoints("opendb", [&](CancelToken* token)
                                 -> common::Result<std::string> {
    Semandaq sys;
    auto opened = sys.OpenDatabase(dir, token);
    if (!opened.ok()) {
      // A cancelled open must not leave a half-replayed relation behind.
      EXPECT_EQ(sys.database().FindRelation("customer"), nullptr);
      return opened.status();
    }
    const Relation* rel = sys.database().FindRelation("customer");
    EXPECT_NE(rel, nullptr);
    return rel != nullptr ? Fingerprint(*rel) : std::string();
  });
  std::remove((dir + "/customer.sdq").c_str());
  std::remove((dir + "/customer.sdq.wal").c_str());
  std::remove((dir + "/catalog.sdqc").c_str());
}

TEST(CancelSweepTest, ExpiredDeadlineSurfacesAsDeadlineExceeded) {
  // Same checkpoints, different cause: a token whose deadline already
  // passed turns the first checkpoint into DeadlineExceeded, and the
  // detector reports that — not a generic Cancelled — to the caller.
  const Relation rel = testing::PaperCustomerRelation();
  CancelToken token;
  token.set_deadline_after_ms(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  detect::DetectorOptions options;
  options.cancel = &token;
  detect::NativeDetector detector(&rel, Parse(testing::PaperCfdText()),
                                  options);
  auto table = detector.Detect();
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace semandaq
