// The TCP front end (src/server/tcp_server + client + protocol): frames
// round-trip over loopback, concurrent clients each get their own session
// (pending repairs don't leak across connections), server-side errors come
// back as error responses (not dropped connections), and `shutdown`
// unblocks every client and lets Wait() return.

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/client.h"
#include "server/protocol.h"
#include "server/service.h"
#include "server/tcp_server.h"
#include "test_util.h"

namespace semandaq::server {
namespace {

/// One command over `client`; asserts transport OK and server-side OK.
std::string Call(Client* client, const std::string& cmd) {
  auto r = client->Call(cmd);
  EXPECT_TRUE(r.ok()) << cmd << " -> " << r.status().ToString();
  if (!r.ok()) return std::string();
  EXPECT_TRUE(r->ok) << cmd << " -> " << r->text;
  return r->text;
}

TEST(ServerTcpTest, ResponseEncodingRoundTrips) {
  ASSERT_OK_AND_ASSIGN(WireResponse ok, DecodeResponse(EncodeResponse(true, "x\n")));
  EXPECT_TRUE(ok.ok);
  EXPECT_EQ(ok.text, "x\n");
  ASSERT_OK_AND_ASSIGN(WireResponse err, DecodeResponse(EncodeResponse(false, "bad")));
  EXPECT_FALSE(err.ok);
  EXPECT_EQ(err.text, "bad");
  EXPECT_FALSE(DecodeResponse("").ok());          // missing status byte
  EXPECT_FALSE(DecodeResponse("Zoops").ok());     // unknown status byte
}

TEST(ServerTcpTest, CommandsAndErrorsOverLoopback) {
  SemandaqService service;
  TcpServer server(&service);  // port 0: ephemeral
  ASSERT_OK(server.Start());
  ASSERT_NE(server.port(), 0);

  ASSERT_OK_AND_ASSIGN(Client client,
                       Client::Connect("127.0.0.1", server.port()));
  EXPECT_NE(Call(&client, "gen customer 60 10").find("generated customer"),
            std::string::npos);
  EXPECT_NE(Call(&client, "ls").find("customer_gold"), std::string::npos);
  EXPECT_EQ(Call(&client, "epoch customer"), "epoch 1\n");

  // A server-side error is an error *response* on a healthy connection.
  ASSERT_OK_AND_ASSIGN(WireResponse err, client.Call("detect nosuch"));
  EXPECT_FALSE(err.ok);
  EXPECT_NE(err.text.find("nosuch"), std::string::npos);
  EXPECT_NE(Call(&client, "detect customer"), "");  // still usable after

  server.Shutdown();
  server.Wait();
}

TEST(ServerTcpTest, SessionsAreIsolatedPerConnection) {
  SemandaqService service;
  TcpServer server(&service);
  ASSERT_OK(server.Start());

  ASSERT_OK_AND_ASSIGN(Client a, Client::Connect("127.0.0.1", server.port()));
  ASSERT_OK_AND_ASSIGN(Client b, Client::Connect("127.0.0.1", server.port()));
  Call(&a, "gen customer 80 10");
  Call(&a, "cfd customer: [CC] -> [CNT] { (44 | UK), (31 | NL) }");
  EXPECT_NE(Call(&a, "clean customer").find("candidate repair"),
            std::string::npos);

  // The pending repair lives in connection a's session only.
  ASSERT_OK_AND_ASSIGN(WireResponse no_pending, b.Call("diff"));
  EXPECT_FALSE(no_pending.ok);
  EXPECT_NE(Call(&a, "diff").find("pending repair"), std::string::npos);
  EXPECT_NE(Call(&a, "apply").find("applied"), std::string::npos);

  // b sees the post-apply world through its own reads.
  EXPECT_EQ(Call(&b, "epoch customer"), "epoch 2\n");

  server.Shutdown();
  server.Wait();
}

TEST(ServerTcpTest, ConcurrentClientsShareOneDatabase) {
  SemandaqService service;
  TcpServer server(&service);
  ASSERT_OK(server.Start());
  {
    ASSERT_OK_AND_ASSIGN(Client boot,
                         Client::Connect("127.0.0.1", server.port()));
    Call(&boot, "gen hospital 200 5");
  }

  constexpr size_t kClients = 8;
  std::vector<std::string> results(kClients);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      auto connected = Client::Connect("127.0.0.1", server.port());
      ASSERT_TRUE(connected.ok()) << connected.status().ToString();
      Client c = std::move(*connected);
      for (int round = 0; round < 3; ++round) {
        results[i] = Call(&c, "detect hospital threads=" +
                                  std::to_string(i % 3 + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  for (size_t i = 1; i < kClients; ++i) {
    EXPECT_EQ(results[i], results[0]);  // thread-count invariant, over TCP
  }

  server.Shutdown();
  server.Wait();
}

TEST(ServerTcpTest, ShutdownCommandStopsServerAndUnblocksWait) {
  SemandaqService service;
  TcpServer server(&service);
  ASSERT_OK(server.Start());

  ASSERT_OK_AND_ASSIGN(Client idle, Client::Connect("127.0.0.1", server.port()));
  ASSERT_OK_AND_ASSIGN(Client killer, Client::Connect("127.0.0.1", server.port()));
  ASSERT_OK_AND_ASSIGN(WireResponse bye, killer.Call("shutdown"));
  EXPECT_TRUE(bye.ok);
  EXPECT_EQ(bye.text, "shutting down\n");

  server.Wait();  // must return: accept loop stopped, idle unblocked

  // Both connections are dead now; further calls fail at the transport.
  EXPECT_FALSE(idle.Call("ls").ok());
  // And new connections are refused.
  EXPECT_FALSE(Client::Connect("127.0.0.1", server.port()).ok());
}

}  // namespace
}  // namespace semandaq::server
