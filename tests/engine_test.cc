#include <gtest/gtest.h>

#include "core/constraint_engine.h"
#include "test_util.h"
#include "workload/customer_gen.h"

namespace semandaq::core {
namespace {

using relational::Database;

class ConstraintEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.AddRelation(semandaq::testing::PaperCustomerRelation()));
  }

  Database db_;
};

TEST_F(ConstraintEngineTest, AddCfdsFromText) {
  ConstraintEngine engine(&db_);
  ASSERT_OK(engine.AddCfdsFromText(semandaq::testing::PaperCfdText()));
  EXPECT_EQ(engine.size(), 2u);
  // They come back resolved.
  EXPECT_TRUE(engine.cfds()[0].resolved());
}

TEST_F(ConstraintEngineTest, RejectsCfdOverMissingRelation) {
  ConstraintEngine engine(&db_);
  EXPECT_FALSE(engine.AddCfdsFromText("nope: [A] -> [B]").ok());
  EXPECT_EQ(engine.size(), 0u);
}

TEST_F(ConstraintEngineTest, RejectsCfdWithUnknownAttribute) {
  ConstraintEngine engine(&db_);
  EXPECT_FALSE(engine.AddCfdsFromText("customer: [NOT_AN_ATTR] -> [CNT]").ok());
}

TEST_F(ConstraintEngineTest, ValidateSatisfiableSet) {
  ConstraintEngine engine(&db_);
  ASSERT_OK(engine.AddCfdsFromText(semandaq::testing::PaperCfdText()));
  ASSERT_OK_AND_ASSIGN(auto report, engine.Validate("customer"));
  EXPECT_TRUE(report.satisfiable);
}

TEST_F(ConstraintEngineTest, ValidateFlagsNonsenseSet) {
  // "Does not make sense" (paper §2): conflicting constants on CNT.
  ConstraintEngine engine(&db_);
  ASSERT_OK(engine.AddCfdsFromText("customer: [CC=_] -> [CNT=UK]\n"
                                   "customer: [CC=_] -> [CNT=US]\n"));
  ASSERT_OK_AND_ASSIGN(auto report, engine.Validate("customer"));
  EXPECT_FALSE(report.satisfiable);
  EXPECT_FALSE(report.conflicting_pairs.empty());
}

TEST_F(ConstraintEngineTest, CfdsForFiltersByRelation) {
  ASSERT_OK(db_.AddRelation(
      semandaq::testing::MakeStringRelation("other", {"A", "B"}, {})));
  ConstraintEngine engine(&db_);
  ASSERT_OK(engine.AddCfdsFromText(semandaq::testing::PaperCfdText()));
  ASSERT_OK(engine.AddCfdsFromText("other: [A] -> [B]"));
  EXPECT_EQ(engine.CfdsFor("customer").size(), 2u);
  EXPECT_EQ(engine.CfdsFor("OTHER").size(), 1u);
  EXPECT_EQ(engine.CfdsFor("missing").size(), 0u);
}

TEST_F(ConstraintEngineTest, PersistAndLoadRoundTrip) {
  ConstraintEngine engine(&db_);
  ASSERT_OK(engine.AddCfdsFromText(semandaq::testing::PaperCfdText()));
  ASSERT_OK(engine.Persist());

  ConstraintEngine fresh(&db_);
  ASSERT_OK(fresh.LoadPersisted());
  // phi2 and phi4 live in different embedded-FD groups, so two CFDs return.
  EXPECT_EQ(fresh.size(), 2u);
  size_t rows = 0;
  for (const auto& c : fresh.cfds()) rows += c.tableau().size();
  EXPECT_EQ(rows, 2u);
}

TEST_F(ConstraintEngineTest, DiscoverFromReferenceData) {
  workload::CustomerWorkloadOptions opts;
  opts.num_tuples = 200;
  opts.noise_rate = 0.0;
  opts.seed = 31;
  auto wl = workload::CustomerGenerator::Generate(opts);
  Database db;
  ASSERT_OK(db.AddRelation(std::move(wl.clean)));

  ConstraintEngine engine(&db);
  discovery::CfdMinerOptions mopts;
  mopts.max_lhs = 2;
  mopts.min_support = 3;
  ASSERT_OK_AND_ASSIGN(size_t added, engine.DiscoverFrom("customer_gold", mopts));
  EXPECT_GT(added, 0u);
  EXPECT_EQ(engine.size(), added);
  // Discovered constraints over clean data are consistent with each other.
  ASSERT_OK_AND_ASSIGN(auto report, engine.Validate("customer_gold"));
  EXPECT_TRUE(report.satisfiable);
}

TEST_F(ConstraintEngineTest, ClearEmptiesTheSet) {
  ConstraintEngine engine(&db_);
  ASSERT_OK(engine.AddCfdsFromText(semandaq::testing::PaperCfdText()));
  engine.Clear();
  EXPECT_EQ(engine.size(), 0u);
}

}  // namespace
}  // namespace semandaq::core
