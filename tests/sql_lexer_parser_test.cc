#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"
#include "test_util.h"

namespace semandaq::sql {
namespace {

TEST(LexerTest, TokenizesKeywordsAndIdentifiers) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("SELECT name FROM customer"));
  ASSERT_EQ(tokens.size(), 5u);  // incl. end
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_EQ(tokens[1].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[1].text, "name");
  EXPECT_TRUE(tokens[2].IsKeyword("FROM"));
  EXPECT_EQ(tokens[4].type, TokenType::kEnd);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("select Select SELECT"));
  for (size_t i = 0; i < 3; ++i) EXPECT_TRUE(tokens[i].IsKeyword("SELECT"));
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("'it''s'"));
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'oops").ok());
  EXPECT_FALSE(Tokenize("\"oops").ok());
}

TEST(LexerTest, Numbers) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("42 2.5 1e3 .5"));
  EXPECT_EQ(tokens[0].type, TokenType::kInteger);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 2.5);
  EXPECT_EQ(tokens[2].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ(tokens[2].double_value, 1000.0);
  EXPECT_EQ(tokens[3].type, TokenType::kFloat);
}

TEST(LexerTest, MultiCharOperators) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("a <> b <= c >= d != e"));
  EXPECT_TRUE(tokens[1].IsSymbol("<>"));
  EXPECT_TRUE(tokens[3].IsSymbol("<="));
  EXPECT_TRUE(tokens[5].IsSymbol(">="));
  EXPECT_TRUE(tokens[7].IsSymbol("!="));
}

TEST(LexerTest, LineComments) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("SELECT -- comment\n1"));
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_EQ(tokens[1].type, TokenType::kInteger);
}

TEST(LexerTest, QuotedIdentifiers) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("\"weird name\""));
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "weird name");
}

TEST(LexerTest, UnknownCharacterFails) {
  EXPECT_FALSE(Tokenize("SELECT @").ok());
}

// ---------------------------------------------------------------- Parser --

TEST(ParserTest, MinimalSelect) {
  ASSERT_OK_AND_ASSIGN(SelectStmt stmt, ParseSelect("SELECT * FROM t"));
  EXPECT_EQ(stmt.items.size(), 1u);
  EXPECT_EQ(stmt.items[0].expr->kind, ExprKind::kStar);
  ASSERT_EQ(stmt.from.size(), 1u);
  EXPECT_EQ(stmt.from[0].table_name, "t");
}

TEST(ParserTest, AliasesWithAndWithoutAs) {
  ASSERT_OK_AND_ASSIGN(SelectStmt stmt,
                       ParseSelect("SELECT a AS x, b y FROM t u, s AS v"));
  EXPECT_EQ(stmt.items[0].alias, "x");
  EXPECT_EQ(stmt.items[1].alias, "y");
  EXPECT_EQ(stmt.from[0].alias, "u");
  EXPECT_EQ(stmt.from[1].alias, "v");
}

TEST(ParserTest, WhereTreePrecedence) {
  ASSERT_OK_AND_ASSIGN(SelectStmt stmt,
                       ParseSelect("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3"));
  // AND binds tighter: OR(a=1, AND(b=2, c=3)).
  ASSERT_NE(stmt.where, nullptr);
  EXPECT_EQ(stmt.where->bin_op, BinOp::kOr);
  EXPECT_EQ(stmt.where->right->bin_op, BinOp::kAnd);
}

TEST(ParserTest, InnerJoinDesugarsToWhere) {
  ASSERT_OK_AND_ASSIGN(
      SelectStmt stmt,
      ParseSelect("SELECT * FROM a INNER JOIN b ON a.x = b.x WHERE a.y = 1"));
  EXPECT_EQ(stmt.from.size(), 2u);
  ASSERT_NE(stmt.where, nullptr);
  EXPECT_EQ(stmt.where->bin_op, BinOp::kAnd);
}

TEST(ParserTest, GroupByHavingOrderLimit) {
  ASSERT_OK_AND_ASSIGN(
      SelectStmt stmt,
      ParseSelect("SELECT cnt, COUNT(*) FROM t GROUP BY cnt "
                  "HAVING COUNT(DISTINCT zip) > 1 ORDER BY cnt DESC LIMIT 5"));
  EXPECT_EQ(stmt.group_by.size(), 1u);
  ASSERT_NE(stmt.having, nullptr);
  ASSERT_EQ(stmt.order_by.size(), 1u);
  EXPECT_FALSE(stmt.order_by[0].ascending);
  EXPECT_EQ(stmt.limit, 5);
}

TEST(ParserTest, CountDistinctAndStar) {
  ASSERT_OK_AND_ASSIGN(SelectStmt stmt,
                       ParseSelect("SELECT COUNT(*), COUNT(DISTINCT a) FROM t"));
  EXPECT_TRUE(stmt.items[0].expr->star_arg);
  EXPECT_TRUE(stmt.items[1].expr->distinct);
}

TEST(ParserTest, PredicateForms) {
  ASSERT_OK_AND_ASSIGN(
      SelectStmt stmt,
      ParseSelect("SELECT a FROM t WHERE a IS NULL AND b IS NOT NULL AND "
                  "c LIKE 'x%' AND d NOT LIKE 'y' AND e IN (1, 2) AND "
                  "f NOT IN ('a') AND g BETWEEN 1 AND 3"));
  // Parse success is the main assertion; spot-check the rendering.
  const std::string text = stmt.ToString();
  EXPECT_NE(text.find("IS NULL"), std::string::npos);
  EXPECT_NE(text.find("IS NOT NULL"), std::string::npos);
  EXPECT_NE(text.find("NOT LIKE"), std::string::npos);
  EXPECT_NE(text.find("NOT IN"), std::string::npos);
  // BETWEEN desugars to >= / <=.
  EXPECT_NE(text.find(">="), std::string::npos);
  EXPECT_NE(text.find("<="), std::string::npos);
}

TEST(ParserTest, ArithmeticPrecedence) {
  ASSERT_OK_AND_ASSIGN(SelectStmt stmt, ParseSelect("SELECT 1 + 2 * 3 FROM t"));
  EXPECT_EQ(stmt.items[0].expr->bin_op, BinOp::kAdd);
  EXPECT_EQ(stmt.items[0].expr->right->bin_op, BinOp::kMul);
}

TEST(ParserTest, QualifiedColumnsAndStars) {
  ASSERT_OK_AND_ASSIGN(SelectStmt stmt, ParseSelect("SELECT t.*, t.a FROM t"));
  EXPECT_EQ(stmt.items[0].expr->kind, ExprKind::kStar);
  EXPECT_EQ(stmt.items[0].expr->qualifier, "t");
  EXPECT_EQ(stmt.items[1].expr->qualifier, "t");
  EXPECT_EQ(stmt.items[1].expr->column, "a");
}

TEST(ParserTest, LiteralsIncludingNullTrueFalse) {
  ASSERT_OK_AND_ASSIGN(SelectStmt stmt,
                       ParseSelect("SELECT NULL, TRUE, FALSE, 'txt', -5 FROM t"));
  EXPECT_TRUE(stmt.items[0].expr->literal.is_null());
  EXPECT_EQ(stmt.items[1].expr->literal.AsInt(), 1);
  EXPECT_EQ(stmt.items[2].expr->literal.AsInt(), 0);
  EXPECT_EQ(stmt.items[3].expr->literal.AsString(), "txt");
  EXPECT_EQ(stmt.items[4].expr->kind, ExprKind::kUnary);
}

TEST(ParserTest, ErrorsAreDescriptive) {
  EXPECT_FALSE(ParseSelect("").ok());
  EXPECT_FALSE(ParseSelect("SELECT").ok());
  EXPECT_FALSE(ParseSelect("SELECT a").ok());              // missing FROM
  EXPECT_FALSE(ParseSelect("SELECT a FROM").ok());         // missing table
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE").ok()); // missing expr
  EXPECT_FALSE(ParseSelect("SELECT a FROM t LIMIT x").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t extra garbage ,").ok());
  EXPECT_FALSE(ParseSelect("SELECT f( FROM t").ok());
}

TEST(ParserTest, RoundTripReparses) {
  const char* queries[] = {
      "SELECT DISTINCT a, b AS c FROM t u WHERE (a = 1 OR b < 2) AND c IS NULL",
      "SELECT COUNT(*) FROM r GROUP BY x HAVING COUNT(DISTINCT y) > 1",
      "SELECT a FROM t ORDER BY a DESC, b LIMIT 3",
  };
  for (const char* q : queries) {
    ASSERT_OK_AND_ASSIGN(SelectStmt stmt, ParseSelect(q));
    ASSERT_OK_AND_ASSIGN(SelectStmt again, ParseSelect(stmt.ToString()));
    EXPECT_EQ(stmt.ToString(), again.ToString()) << q;
  }
}

}  // namespace
}  // namespace semandaq::sql
