// The concurrent service (src/server/service): it speaks core::Session's
// grammar with byte-identical outputs, publishes a new epoch per write,
// serves reads from pinned immutable snapshots, and round-trips a whole
// database through the catalog manifest — including snapshot compaction
// and crash recovery across a compaction boundary.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "core/session.h"
#include "relational/value.h"
#include "server/service.h"
#include "storage/catalog.h"
#include "storage/snapshot.h"
#include "test_util.h"

namespace semandaq::server {
namespace {

using relational::Row;
using relational::Value;

std::string Exec(SemandaqService* svc, SemandaqService::SessionState* session,
                 const std::string& cmd) {
  auto r = svc->Execute(session, cmd);
  EXPECT_TRUE(r.ok()) << cmd << " -> " << r.status().ToString();
  return r.ok() ? *r : std::string();
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// A row for the generated customer schema (7 string attributes).
Row CustomerRow(const std::string& tag) {
  Row row;
  for (int c = 0; c < 7; ++c) {
    row.push_back(Value::String(tag + "_" + std::to_string(c)));
  }
  return row;
}

// ------------------------------------------------------------ grammar parity

// The load-bearing contract: the same script through core::Session and
// through the service produces the same bytes, command by command. Every
// read here computes on a pinned snapshot in the service and directly on
// the master in the session, so equality also proves snapshot fidelity.
TEST(ServerServiceTest, GrammarParityWithCoreSession) {
  const std::vector<std::string> script = {
      "gen customer 150 8",
      "ls",
      "show customer 5",
      "cfd customer: [CNT=UK, ZIP=_] -> [STR=_]",
      "cfd customer: [CC] -> [CNT] { (44 | UK), (31 | NL), (1 | US) }",
      "cfds",
      "validate customer",
      "detect customer",
      "detect customer sql",
      "detect customer threads=3",
      "map customer 5",
      "report customer",
      "explore customer 0 0",
      "mine customer",
      "clean customer",
      "diff",
      "apply",
      "detect customer",
      "sql SELECT CNT, COUNT(*) AS n FROM customer GROUP BY CNT ORDER BY CNT",
  };

  core::Session session;
  SemandaqService service;
  SemandaqService::SessionState state;
  for (const std::string& cmd : script) {
    auto expected = session.Execute(cmd);
    ASSERT_TRUE(expected.ok()) << cmd << " -> " << expected.status().ToString();
    EXPECT_EQ(Exec(&service, &state, cmd), *expected) << "command: " << cmd;
  }
}

TEST(ServerServiceTest, ErrorParityWithCoreSession) {
  const std::vector<std::string> bad = {
      "frobnicate",
      "show nosuch",
      "detect nosuch",
      "clean nosuch",
      "diff",   // no pending repair
      "apply",  // no pending repair
      "gen widgets 10 5",
      "detect customer threads=zero",
  };
  core::Session session;
  SemandaqService service;
  SemandaqService::SessionState state;
  for (const std::string& cmd : bad) {
    auto expected = session.Execute(cmd);
    ASSERT_FALSE(expected.ok()) << cmd;
    auto actual = service.Execute(&state, cmd);
    ASSERT_FALSE(actual.ok()) << cmd;
    EXPECT_EQ(actual.status().ToString(), expected.status().ToString())
        << "command: " << cmd;
  }
}

TEST(ServerServiceTest, HelpMentionsEpoch) {
  EXPECT_NE(SemandaqService::Help().find("epoch REL"), std::string::npos);
}

// ------------------------------------------------------------------- epochs

TEST(ServerServiceTest, EpochAdvancesPerWriteBatch) {
  SemandaqService service;
  SemandaqService::SessionState state;
  EXPECT_FALSE(service.Execute(&state, "epoch customer").ok());

  Exec(&service, &state, "gen customer 40 10");
  EXPECT_EQ(Exec(&service, &state, "epoch customer"), "epoch 1\n");

  ASSERT_OK_AND_ASSIGN(size_t appended,
                       service.AppendBatch("customer", {CustomerRow("a"),
                                                        CustomerRow("b")}));
  EXPECT_EQ(appended, 2u);
  EXPECT_EQ(Exec(&service, &state, "epoch customer"), "epoch 2\n");

  // A batch is one epoch regardless of row count; an independent relation
  // keeps its own counter.
  ASSERT_OK_AND_ASSIGN(appended,
                       service.AppendBatch("customer", {CustomerRow("c")}));
  EXPECT_EQ(Exec(&service, &state, "epoch customer"), "epoch 3\n");
  EXPECT_EQ(Exec(&service, &state, "epoch customer_gold"), "epoch 1\n");
}

TEST(ServerServiceTest, PinnedSnapshotIsImmutableAcrossWrites) {
  SemandaqService service;
  SemandaqService::SessionState state;
  Exec(&service, &state, "gen customer 30 10");

  SnapshotPtr pinned = service.Pin("customer");
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->epoch, 1u);
  const size_t pinned_size = pinned->relation.size();

  ASSERT_OK(service.AppendBatch("customer", {CustomerRow("x")}).status());

  // The pin still sees the old world; a fresh pin sees the new one.
  EXPECT_EQ(pinned->relation.size(), pinned_size);
  SnapshotPtr fresh = service.Pin("customer");
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->epoch, 2u);
  EXPECT_EQ(fresh->relation.size(), pinned_size + 1);
  EXPECT_EQ(service.Pin("nosuch"), nullptr);
}

TEST(ServerServiceTest, CleanPinsItsEpochAcrossConcurrentWrites) {
  SemandaqService service;
  SemandaqService::SessionState state;
  Exec(&service, &state, "gen customer 80 10");
  Exec(&service, &state, "cfd customer: [CC] -> [CNT] { (44 | UK), (31 | NL) }");
  const std::string plan = Exec(&service, &state, "clean customer");
  EXPECT_NE(plan.find("candidate repair"), std::string::npos);

  // A write between clean and diff/apply must not corrupt the pending
  // plan: diff renders against the pinned world, apply still lands on the
  // master (append-only writes keep the repaired tuple ids valid).
  ASSERT_OK(service.AppendBatch("customer", {CustomerRow("w")}).status());
  EXPECT_NE(Exec(&service, &state, "diff").find("pending repair"),
            std::string::npos);
  EXPECT_NE(Exec(&service, &state, "apply").find("applied"),
            std::string::npos);
  EXPECT_NE(Exec(&service, &state, "detect customer").find("total vio 0"),
            std::string::npos);
}

// -------------------------------------------------------- whole-DB catalog

TEST(ServerServiceTest, SaveDbOpenDbRoundTrip) {
  const std::string dir = TempPath("svc_dbdir");
  SemandaqService source;
  SemandaqService::SessionState state;
  Exec(&source, &state, "gen customer 60 10");
  Exec(&source, &state, "gen hospital 50 5");
  const std::string saved = Exec(&source, &state, "savedb " + dir);
  EXPECT_NE(saved.find("saved 4 relation(s)"), std::string::npos);

  SemandaqService target;
  SemandaqService::SessionState tstate;
  const std::string opened = Exec(&target, &tstate, "opendb " + dir);
  EXPECT_NE(opened.find("opened 4 relation(s)"), std::string::npos);
  EXPECT_EQ(Exec(&target, &tstate, "ls"), Exec(&source, &state, "ls"));
  EXPECT_EQ(Exec(&target, &tstate, "show customer 10"),
            Exec(&source, &state, "show customer 10"));
  EXPECT_EQ(Exec(&target, &tstate, "sql SELECT COUNT(*) FROM hospital"),
            Exec(&source, &state, "sql SELECT COUNT(*) FROM hospital"));

  // Opening into a database that already has one of the names must fail
  // without clobbering existing state.
  SemandaqService occupied;
  SemandaqService::SessionState ostate;
  Exec(&occupied, &ostate, "gen customer 10 5");
  EXPECT_FALSE(occupied.Execute(&ostate, "opendb " + dir).ok());
  EXPECT_EQ(Exec(&occupied, &ostate, "epoch customer"), "epoch 1\n");

  // A directory with no manifest is NotFound, not corruption.
  auto missing = target.Execute(&tstate, "opendb " + TempPath("no_such_db"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), common::StatusCode::kNotFound);
}

// ------------------------------------------------- compaction + crash tail

TEST(ServerServiceTest, CompactionRewritesSnapshotAndSurvivesTornTail) {
  const std::string path = TempPath("svc_compact.sdq");
  SemandaqService service;
  SemandaqService::SessionState state;
  Exec(&service, &state, "gen customer 25 10");

  // Arm compaction at 2 WAL records.
  const std::string saved =
      Exec(&service, &state, "save customer " + path + " compact=2");
  EXPECT_NE(saved.find("compaction armed at 2 WAL record(s)"),
            std::string::npos);

  // One mutation: below the threshold, so the WAL carries it.
  ASSERT_OK(service.AppendBatch("customer", {CustomerRow("wal1")}).status());
  // Second mutation crosses the threshold: the snapshot is rewritten with
  // all 27 rows and the sidecar resets to empty.
  ASSERT_OK(service.AppendBatch("customer", {CustomerRow("wal2")}).status());

  {
    ASSERT_OK_AND_ASSIGN(storage::LoadedSnapshot compacted,
                         storage::SnapshotReader::Read(path));
    EXPECT_EQ(compacted.relation.size(), 27u);  // WAL rows folded in
  }

  // Third mutation lands in the fresh (post-compaction) WAL; then tear the
  // tail the way a crash mid-append would.
  ASSERT_OK(service.AppendBatch("customer", {CustomerRow("wal3")}).status());
  const std::string wal_path = storage::WalPathFor(path);
  ASSERT_OK_AND_ASSIGN(std::string wal_bytes,
                       common::ReadFileToString(wal_path));
  ASSERT_OK(common::WriteStringToFile(wal_path, wal_bytes + "\x07\x01"));

  // Recovery across the compaction boundary: the compacted snapshot plus
  // the surviving WAL record, torn tail dropped silently.
  SemandaqService recovered;
  SemandaqService::SessionState rstate;
  const std::string opened =
      Exec(&recovered, &rstate, "open customer " + path);
  EXPECT_NE(opened.find("+1 wal record(s)"), std::string::npos);
  SnapshotPtr snap = recovered.Pin("customer");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->relation.size(), 28u);
  EXPECT_EQ(Exec(&recovered, &rstate, "show customer 100"),
            Exec(&service, &state, "show customer 100"));
}

}  // namespace
}  // namespace semandaq::server
