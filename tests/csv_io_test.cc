#include <gtest/gtest.h>

#include "relational/csv_io.h"
#include "test_util.h"

namespace semandaq::relational {
namespace {

TEST(CsvIoTest, InfersAllStringSchema) {
  ASSERT_OK_AND_ASSIGN(Relation rel,
                       RelationFromCsv("t", "A,B\nx,1\ny,2\n"));
  EXPECT_EQ(rel.schema().size(), 2u);
  EXPECT_EQ(rel.schema().attr(0).name, "A");
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_EQ(rel.cell(0, 1).AsString(), "1");  // string without schema
}

TEST(CsvIoTest, TypedSchemaParsesCells) {
  Schema schema;
  ASSERT_OK(schema.AddAttribute({"NAME", DataType::kString, {}}));
  ASSERT_OK(schema.AddAttribute({"AGE", DataType::kInt, {}}));
  ASSERT_OK(schema.AddAttribute({"SCORE", DataType::kDouble, {}}));
  ASSERT_OK_AND_ASSIGN(Relation rel,
                       RelationFromCsv("t", "NAME,AGE,SCORE\nbob,42,2.5\nsue,,\n",
                                       &schema));
  EXPECT_EQ(rel.cell(0, 1).AsInt(), 42);
  EXPECT_DOUBLE_EQ(rel.cell(0, 2).AsDouble(), 2.5);
  // Empty cells become NULL.
  EXPECT_TRUE(rel.cell(1, 1).is_null());
  EXPECT_TRUE(rel.cell(1, 2).is_null());
}

TEST(CsvIoTest, TypedSchemaRejectsBadCells) {
  Schema schema;
  ASSERT_OK(schema.AddAttribute({"AGE", DataType::kInt, {}}));
  auto r = RelationFromCsv("t", "AGE\nnot_a_number\n", &schema);
  EXPECT_FALSE(r.ok());
}

TEST(CsvIoTest, HeaderMismatchRejected) {
  Schema schema = Schema::AllStrings({"A", "B"});
  EXPECT_FALSE(RelationFromCsv("t", "A,WRONG\nx,y\n", &schema).ok());
  EXPECT_FALSE(RelationFromCsv("t", "A\nx\n", &schema).ok());
}

TEST(CsvIoTest, RaggedRecordRejected) {
  EXPECT_FALSE(RelationFromCsv("t", "A,B\nx\n").ok());
}

TEST(CsvIoTest, EmptyDocumentRejected) {
  EXPECT_FALSE(RelationFromCsv("t", "").ok());
}

TEST(CsvIoTest, DuplicateHeaderRejected) {
  EXPECT_FALSE(RelationFromCsv("t", "A,a\n1,2\n").ok());
}

TEST(CsvIoTest, RoundTripPreservesContent) {
  Relation rel = testing::MakeStringRelation(
      "t", {"A", "B"}, {{"plain", "with,comma"}, {"q\"uote", ""}});
  const std::string csv = RelationToCsv(rel);
  ASSERT_OK_AND_ASSIGN(Relation back, RelationFromCsv("t", csv));
  EXPECT_EQ(back.size(), rel.size());
  EXPECT_EQ(back.cell(0, 1).AsString(), "with,comma");
  EXPECT_EQ(back.cell(1, 0).AsString(), "q\"uote");
  // "" round-trips as NULL (empty cell).
  EXPECT_TRUE(back.cell(1, 1).is_null());
}

TEST(CsvIoTest, FileRoundTrip) {
  Relation rel = testing::MakeStringRelation("t", {"X"}, {{"1"}, {"2"}});
  const std::string path = ::testing::TempDir() + "/semandaq_rel.csv";
  ASSERT_OK(SaveRelationCsv(rel, path));
  ASSERT_OK_AND_ASSIGN(Relation back, LoadRelationCsv("t", path));
  EXPECT_EQ(back.size(), 2u);
}

TEST(CsvIoTest, SkipsDeadTuplesOnExport) {
  Relation rel = testing::MakeStringRelation("t", {"X"}, {{"1"}, {"2"}, {"3"}});
  ASSERT_OK(rel.Delete(1));
  ASSERT_OK_AND_ASSIGN(Relation back, RelationFromCsv("t", RelationToCsv(rel)));
  EXPECT_EQ(back.size(), 2u);
}

}  // namespace
}  // namespace semandaq::relational
