#include "relational/dictionary.h"

#include <gtest/gtest.h>

#include "relational/encoded_relation.h"
#include "test_util.h"

namespace semandaq::relational {
namespace {

TEST(DictionaryTest, NullAlwaysMapsToNullCode) {
  Dictionary d;
  EXPECT_EQ(d.Encode(Value::Null()), kNullCode);
  EXPECT_EQ(d.Lookup(Value::Null()), kNullCode);
  EXPECT_TRUE(d.Decode(kNullCode).is_null());
  EXPECT_EQ(d.size(), 0u);  // NULL never counts as a distinct value
}

TEST(DictionaryTest, EncodeDecodeRoundTrip) {
  Dictionary d;
  const std::vector<Value> values = {
      Value::String("Edinburgh"), Value::Int(44), Value::Double(2.5),
      Value::String(""),  // empty string is a value, distinct from NULL
  };
  std::vector<Code> codes;
  for (const Value& v : values) codes.push_back(d.Encode(v));
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(d.Decode(codes[i]), values[i]);
    EXPECT_EQ(d.Lookup(values[i]), codes[i]);
    EXPECT_EQ(d.Encode(values[i]), codes[i]) << "re-encode must be stable";
  }
  EXPECT_EQ(d.size(), values.size());
}

TEST(DictionaryTest, CodesAreDenseAndFirstSeenOrdered) {
  Dictionary d;
  EXPECT_EQ(d.Encode(Value::String("a")), 1u);
  EXPECT_EQ(d.Encode(Value::String("b")), 2u);
  EXPECT_EQ(d.Encode(Value::String("a")), 1u);
  EXPECT_EQ(d.Encode(Value::String("c")), 3u);
  EXPECT_EQ(d.size(), 3u);
}

TEST(DictionaryTest, LookupOfUnknownValueIsAbsent) {
  Dictionary d;
  d.Encode(Value::String("present"));
  EXPECT_EQ(d.Lookup(Value::String("missing")), kAbsentCode);
  EXPECT_FALSE(d.Contains(kAbsentCode));
}

TEST(DictionaryTest, DistinguishesTypesWithEqualDisplay) {
  // INT 2 and DOUBLE 2.0 and STRING "2" are distinct Values and must get
  // distinct codes (code equality == Value equality).
  Dictionary d;
  const Code ci = d.Encode(Value::Int(2));
  const Code cd = d.Encode(Value::Double(2.0));
  const Code cs = d.Encode(Value::String("2"));
  EXPECT_NE(ci, cd);
  EXPECT_NE(ci, cs);
  EXPECT_NE(cd, cs);
}

// ------------------------------------------------------------ EncodedRelation

TEST(EncodedRelationTest, SnapshotMatchesRelation) {
  Relation rel = semandaq::testing::PaperCustomerRelation();
  EncodedRelation enc(&rel);
  ASSERT_EQ(enc.num_columns(), rel.schema().size());
  ASSERT_EQ(enc.IdBound(), rel.IdBound());
  rel.ForEach([&](TupleId tid, const Row& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      EXPECT_EQ(enc.Decode(c, enc.code(tid, c)), row[c])
          << "cell (" << tid << ", " << c << ")";
    }
  });
  EXPECT_TRUE(enc.InSync());
}

TEST(EncodedRelationTest, NullCellsEncodeToNullCode) {
  Relation rel = semandaq::testing::MakeStringRelation(
      "t", {"A", "B"}, {{"", "x"}, {"y", ""}});
  EncodedRelation enc(&rel);
  EXPECT_EQ(enc.code(0, 0), kNullCode);
  EXPECT_NE(enc.code(0, 1), kNullCode);
  EXPECT_NE(enc.code(1, 0), kNullCode);
  EXPECT_EQ(enc.code(1, 1), kNullCode);
}

TEST(EncodedRelationTest, EqualValuesShareOneCodePerColumn) {
  Relation rel = semandaq::testing::MakeStringRelation(
      "t", {"A", "B"}, {{"x", "x"}, {"x", "y"}});
  EncodedRelation enc(&rel);
  EXPECT_EQ(enc.code(0, 0), enc.code(1, 0));  // same column, same value
  // Dictionaries are per column: "x" in A and "x" in B code independently.
  EXPECT_EQ(enc.dictionary(0).size(), 1u);
  EXPECT_EQ(enc.dictionary(1).size(), 2u);
}

TEST(EncodedRelationTest, SyncAppendsInserts) {
  Relation rel = semandaq::testing::MakeStringRelation("t", {"A"}, {{"x"}});
  EncodedRelation enc(&rel);
  rel.MustInsert({Value::String("y")});
  rel.MustInsert({Value::String("x")});
  EXPECT_FALSE(enc.InSync());
  enc.Sync();
  EXPECT_TRUE(enc.InSync());
  ASSERT_EQ(enc.IdBound(), 3);
  EXPECT_EQ(enc.code(2, 0), enc.code(0, 0));  // appended "x" reuses the code
  EXPECT_NE(enc.code(1, 0), enc.code(0, 0));
}

TEST(EncodedRelationTest, SyncRebuildsAfterOverwrite) {
  Relation rel = semandaq::testing::MakeStringRelation(
      "t", {"A"}, {{"x"}, {"y"}});
  EncodedRelation enc(&rel);
  ASSERT_OK(rel.SetCell(0, 0, Value::String("z")));
  EXPECT_FALSE(enc.InSync());
  enc.Sync();
  EXPECT_TRUE(enc.InSync());
  EXPECT_EQ(enc.Decode(0, enc.code(0, 0)), Value::String("z"));
}

TEST(EncodedRelationTest, ApplyCellStaysWarmThroughOverwrite) {
  Relation rel = semandaq::testing::MakeStringRelation(
      "t", {"A", "B"}, {{"x", "u"}, {"y", "v"}});
  EncodedRelation enc(&rel);
  ASSERT_OK(rel.SetCell(1, 0, Value::String("x")));
  enc.ApplyCell(1, 0);
  EXPECT_TRUE(enc.InSync());
  EXPECT_EQ(enc.code(1, 0), enc.code(0, 0));
  // Untouched column unaffected.
  EXPECT_EQ(enc.Decode(1, enc.code(1, 1)), Value::String("v"));
}

TEST(EncodedRelationTest, DeletesNeedNoCodeWork) {
  Relation rel = semandaq::testing::MakeStringRelation(
      "t", {"A"}, {{"x"}, {"y"}});
  EncodedRelation enc(&rel);
  ASSERT_OK(rel.Delete(0));
  enc.Sync();
  EXPECT_TRUE(enc.InSync());
  std::vector<TupleId> live;
  enc.ForEachLive([&](TupleId tid) { live.push_back(tid); });
  EXPECT_EQ(live, (std::vector<TupleId>{1}));
}

}  // namespace
}  // namespace semandaq::relational
