// Property tests for the cleanser: on randomized dirty instances, the
// repaired output must (a) satisfy the constraint set, (b) differ from the
// input only in the recorded change log, and (c) score sane precision/recall
// against the generator's gold standard.

#include <gtest/gtest.h>

#include "cfd/cfd_parser.h"
#include "detect/native_detector.h"
#include "repair/batch_repair.h"
#include "test_util.h"
#include "workload/customer_gen.h"
#include "workload/hospital_gen.h"
#include "workload/quality.h"

namespace semandaq::repair {
namespace {

using relational::Relation;
using relational::Row;
using relational::TupleId;

std::vector<cfd::Cfd> Parse(const std::string& text) {
  auto r = cfd::ParseCfdSet(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(*r) : std::vector<cfd::Cfd>{};
}

struct Sweep {
  size_t tuples;
  double noise;
  uint64_t seed;
};

class RepairProperty : public ::testing::TestWithParam<Sweep> {};

TEST_P(RepairProperty, RepairedCustomerSatisfiesSigma) {
  const Sweep p = GetParam();
  workload::CustomerWorkloadOptions opts;
  opts.num_tuples = p.tuples;
  opts.noise_rate = p.noise;
  opts.seed = p.seed;
  auto wl = workload::CustomerGenerator::Generate(opts);
  auto cfds = Parse(workload::CustomerGenerator::PaperCfds());

  CostModel cm(wl.dirty.schema());
  BatchRepair repair(&wl.dirty, cfds, cm);
  ASSERT_OK_AND_ASSIGN(RepairResult result, repair.Run());

  // (a) Consistency restored.
  detect::NativeDetector detector(&result.repaired, cfds);
  ASSERT_OK_AND_ASSIGN(auto table, detector.Detect());
  EXPECT_EQ(table.TotalVio(), 0) << "repair left violations";
  EXPECT_EQ(result.remaining_violations, 0u);

  // (b) The change log is exactly the diff dirty -> repaired.
  size_t diff_cells = 0;
  wl.dirty.ForEach([&](TupleId tid, const Row& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (!(row[c] == result.repaired.cell(tid, c))) ++diff_cells;
    }
  });
  EXPECT_EQ(diff_cells, result.changes.size());
  for (const CellChange& ch : result.changes) {
    EXPECT_EQ(ch.original, wl.dirty.cell(ch.tid, ch.col));
    EXPECT_EQ(ch.repaired, result.repaired.cell(ch.tid, ch.col));
    EXPECT_NE(ch.original, ch.repaired);
  }

  // (c) Quality metrics are well-formed.
  auto quality = workload::EvaluateRepair(wl.clean, wl.dirty, result.repaired);
  EXPECT_GE(quality.precision, 0.0);
  EXPECT_LE(quality.precision, 1.0);
  EXPECT_GE(quality.recall, 0.0);
  EXPECT_LE(quality.recall, 1.0);
  EXPECT_EQ(quality.error_cells, wl.injected.size());
}

TEST_P(RepairProperty, RepairedHospitalSatisfiesSigma) {
  const Sweep p = GetParam();
  workload::HospitalWorkloadOptions opts;
  opts.num_tuples = p.tuples;
  opts.noise_rate = p.noise;
  opts.seed = p.seed;
  auto wl = workload::HospitalGenerator::Generate(opts);
  auto cfds = Parse(workload::HospitalGenerator::HospitalCfds());

  CostModel cm(wl.dirty.schema());
  BatchRepair repair(&wl.dirty, cfds, cm);
  ASSERT_OK_AND_ASSIGN(RepairResult result, repair.Run());

  detect::NativeDetector detector(&result.repaired, cfds);
  ASSERT_OK_AND_ASSIGN(auto table, detector.Detect());
  EXPECT_EQ(table.TotalVio(), 0);
}

TEST_P(RepairProperty, CostNeverNegativeAndMatchesChanges) {
  const Sweep p = GetParam();
  workload::CustomerWorkloadOptions opts;
  opts.num_tuples = p.tuples;
  opts.noise_rate = p.noise;
  opts.seed = p.seed + 1000;
  auto wl = workload::CustomerGenerator::Generate(opts);
  auto cfds = Parse(workload::CustomerGenerator::PaperCfds());

  CostModel cm(wl.dirty.schema());
  BatchRepair repair(&wl.dirty, cfds, cm);
  ASSERT_OK_AND_ASSIGN(RepairResult result, repair.Run());

  double recomputed = 0;
  for (const CellChange& ch : result.changes) {
    EXPECT_GE(ch.cost, 0.0);
    recomputed += ch.cost;
  }
  EXPECT_NEAR(recomputed, result.total_cost, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, RepairProperty,
    ::testing::Values(Sweep{100, 0.02, 11}, Sweep{100, 0.1, 12},
                      Sweep{300, 0.05, 13}, Sweep{300, 0.15, 14},
                      Sweep{600, 0.08, 15}),
    [](const ::testing::TestParamInfo<Sweep>& info) {
      return "n" + std::to_string(info.param.tuples) + "_noise" +
             std::to_string(static_cast<int>(info.param.noise * 100)) + "_seed" +
             std::to_string(info.param.seed);
    });

// The headline quality claim of [VLDB'07]: at moderate noise the repair
// recovers most injected errors with high precision. Scoped to one seed so
// the assertion stays deterministic.
TEST(RepairQualityHeadline, ModerateNoiseHighQuality) {
  workload::CustomerWorkloadOptions opts;
  opts.num_tuples = 2000;
  opts.noise_rate = 0.05;
  opts.seed = 77;
  auto wl = workload::CustomerGenerator::Generate(opts);
  auto cfds = Parse(workload::CustomerGenerator::PaperCfds());
  CostModel cm(wl.dirty.schema());
  BatchRepair repair(&wl.dirty, cfds, cm);
  ASSERT_OK_AND_ASSIGN(RepairResult result, repair.Run());
  auto q = workload::EvaluateRepair(wl.clean, wl.dirty, result.repaired);
  // Not every injected error is even *detectable* (e.g. a NAME typo), so
  // recall is bounded away from 1; the detectable majority should be fixed.
  EXPECT_GT(q.recall, 0.35) << q.ToString();
  EXPECT_GT(q.precision, 0.5) << q.ToString();
}

}  // namespace
}  // namespace semandaq::repair
