// The code-columnar repair path: BatchRepair evaluates each round's
// candidate resolutions in parallel against the round-start state (encoded
// or row mode, any SIMD tier) and applies them serially in a canonical
// order — so the ENTIRE RepairResult (changes with ranked alternatives and
// costs, the repaired relation, and every audit counter including the
// merged equivalence classes) must be byte-identical across
// {1,2,4,hw} threads x {scalar,sse2,avx2} x {encoded,row} on every
// relation shape: the paper walkthrough, generated customer/hospital
// workloads, empty input, NULL-heavy rows, and tombstoned tuples.
// Also gates the facade loop end to end: repair -> ApplyRepair -> WAL ->
// reopen -> re-detect must land on the identical (clean) detection state.

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cfd/cfd_parser.h"
#include "common/simd/simd.h"
#include "core/semandaq.h"
#include "relational/relation.h"
#include "repair/batch_repair.h"
#include "repair/cost_model.h"
#include "test_util.h"
#include "workload/customer_gen.h"
#include "workload/hospital_gen.h"

namespace semandaq::repair {
namespace {

namespace simd = common::simd;
using relational::Relation;
using relational::Row;
using relational::TupleId;
using relational::Value;

const simd::Level kTiers[] = {simd::Level::kScalar, simd::Level::kSse2,
                              simd::Level::kAvx2};
const size_t kThreadCounts[] = {1, 2, 4, 0};  // 0 = all hardware threads

std::vector<cfd::Cfd> Parse(const std::string& text) {
  auto r = cfd::ParseCfdSet(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(*r) : std::vector<cfd::Cfd>{};
}

std::string ValueStr(const Value& v) {
  return v.is_null() ? "<null>" : v.ToDisplayString();
}

/// The byte-identity surface: every field a caller can observe, costs at
/// full double precision, plus the repaired relation's live contents.
std::string RepairSignature(const RepairResult& r) {
  std::ostringstream out;
  out.precision(17);
  out << "cost=" << r.total_cost << " iters=" << r.iterations
      << " remaining=" << r.remaining_violations
      << " null_escapes=" << r.null_escapes << " merged=" << r.merged_classes
      << "\n";
  for (const CellChange& ch : r.changes) {
    out << ch.tid << ":" << ch.col << " " << ValueStr(ch.original) << " -> "
        << ValueStr(ch.repaired) << " cost=" << ch.cost << " alts=[";
    for (const auto& [v, c] : ch.alternatives) {
      out << ValueStr(v) << "@" << c << ",";
    }
    out << "]\n";
  }
  r.repaired.ForEach([&](TupleId tid, const Row& row) {
    out << "#" << tid;
    for (const Value& v : row) out << "|" << ValueStr(v);
    out << "\n";
  });
  return out.str();
}

std::string RunRepair(const Relation& rel, const std::string& cfd_text,
                      bool use_encoded, size_t threads, simd::Level tier) {
  RepairOptions opts;
  opts.use_encoded = use_encoded;
  opts.num_threads = threads;
  opts.simd_level = tier;
  BatchRepair repair(&rel, Parse(cfd_text), CostModel(rel.schema()), opts);
  auto result = repair.Run();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? RepairSignature(*result) : std::string();
}

/// Repairs `rel` under every mode combination and requires each signature
/// to equal the serial row-mode scalar reference.
void ExpectInvariantRepair(const Relation& rel, const std::string& cfds) {
  const std::string reference =
      RunRepair(rel, cfds, /*use_encoded=*/false, 1, simd::Level::kScalar);
  for (bool encoded : {false, true}) {
    for (size_t threads : kThreadCounts) {
      for (simd::Level tier : kTiers) {
        EXPECT_EQ(reference, RunRepair(rel, cfds, encoded, threads, tier))
            << "encoded=" << encoded << " threads=" << threads
            << " tier=" << static_cast<int>(tier);
      }
    }
  }
}

TEST(ParallelRepairTest, PaperCustomerIsModeInvariant) {
  ExpectInvariantRepair(semandaq::testing::PaperCustomerRelation(),
                        semandaq::testing::PaperCfdText());
}

TEST(ParallelRepairTest, GeneratedCustomerWorkloadIsModeInvariant) {
  workload::CustomerWorkloadOptions opts;
  opts.num_tuples = 400;
  opts.noise_rate = 0.05;
  opts.seed = 9;
  auto wl = workload::CustomerGenerator::Generate(opts);
  ExpectInvariantRepair(wl.dirty, workload::CustomerGenerator::PaperCfds());
}

TEST(ParallelRepairTest, HospitalWorkloadIsModeInvariant) {
  workload::HospitalWorkloadOptions opts;
  opts.num_tuples = 300;
  opts.noise_rate = 0.08;
  opts.seed = 3;
  auto wl = workload::HospitalGenerator::Generate(opts);
  ExpectInvariantRepair(wl.dirty, workload::HospitalGenerator::HospitalCfds());
}

TEST(ParallelRepairTest, EmptyRelationIsModeInvariant) {
  const Relation empty = semandaq::testing::MakeStringRelation(
      "customer", {"NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"}, {});
  ExpectInvariantRepair(empty, semandaq::testing::PaperCfdText());
  // And the repair itself must be a no-op.
  RepairOptions opts;
  opts.num_threads = 2;
  BatchRepair repair(&empty, Parse(semandaq::testing::PaperCfdText()),
                     CostModel(empty.schema()), opts);
  auto result = repair.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->changes.empty());
  EXPECT_EQ(result->total_cost, 0.0);
}

TEST(ParallelRepairTest, NullHeavyRelationIsModeInvariant) {
  // NULLs in LHS cells exempt tuples from matching; NULLs in RHS cells
  // still violate constant patterns; whole-row NULL tuples ride along.
  // The kNullCode handling of the encoded path must agree with the row
  // walk everywhere.
  const Relation rel = semandaq::testing::MakeStringRelation(
      "customer", {"NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"},
      {
          {"Mike", "UK", "Edinburgh", "EH2 4SD", "Mayfield Rd", "44", "131"},
          {"Rick", "UK", "Edinburgh", "EH2 4SD", "Crichton St", "44", "131"},
          {"Noz1", "UK", "", "EH2 4SD", "", "44", ""},
          {"Noz2", "", "Edinburgh", "EH2 4SD", "Infirmary St", "44", "131"},
          {"Noz3", "UK", "Edinburgh", "", "Lauriston Pl", "44", "131"},
          {"Eve", "US", "NewYork", "10011", "Broadway", "44", "212"},
          {"Gone", "", "", "", "", "", ""},
      });
  ExpectInvariantRepair(rel, semandaq::testing::PaperCfdText());
}

TEST(ParallelRepairTest, TombstonedRelationIsModeInvariant) {
  // Deleted tuples must be invisible to both detection modes: the encoded
  // snapshot's liveness mask and the row walk's IsLive filter.
  Relation rel = semandaq::testing::PaperCustomerRelation();
  const TupleId extra = rel.MustInsert(
      {Value::String("Zed"), Value::String("UK"), Value::String("Edinburgh"),
       Value::String("EH2 4SD"), Value::String("George Sq"), Value::String("44"),
       Value::String("131")});
  ASSERT_OK(rel.Delete(1));      // a member of the EH2 4SD group
  ASSERT_OK(rel.Delete(extra));  // the freshly inserted conflict
  ExpectInvariantRepair(rel, semandaq::testing::PaperCfdText());
}

// ---------------------------------------------------------------------------
// The full loop: repair -> apply -> WAL sidecar -> reopen -> re-detect.

TEST(ParallelRepairTest, RepairWalReopenRedetectRoundTrip) {
  const std::string path =
      std::string(::testing::TempDir()) + "parallel_repair_roundtrip.sdq";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());

  core::Semandaq sys;
  ASSERT_OK(sys.Connect(semandaq::testing::PaperCustomerRelation()));
  ASSERT_OK(
      sys.constraints().AddCfdsFromText(semandaq::testing::PaperCfdText()));
  ASSERT_OK_AND_ASSIGN(auto saved, sys.SaveRelation("customer", path));
  (void)saved;

  // Parallel encoded clean; the facade routes threads=2 into the engine.
  RepairOptions opts;
  opts.num_threads = 2;
  ASSERT_OK_AND_ASSIGN(auto repair, sys.Clean("customer", opts));
  EXPECT_FALSE(repair.changes.empty());
  EXPECT_EQ(repair.remaining_violations, 0u);
  ASSERT_OK(sys.ApplyRepair("customer", repair));

  // The live relation is clean now...
  ASSERT_OK_AND_ASSIGN(auto live, sys.DetectErrors("customer"));
  EXPECT_EQ(live.TotalVio(), 0);

  // ...and so is the one replayed from snapshot + WAL in a fresh system.
  core::Semandaq other;
  ASSERT_OK_AND_ASSIGN(auto opened, other.OpenRelation("customer", path));
  (void)opened;
  ASSERT_OK(
      other.constraints().AddCfdsFromText(semandaq::testing::PaperCfdText()));
  ASSERT_OK_AND_ASSIGN(auto reopened, other.DetectErrors("customer"));
  EXPECT_EQ(reopened.TotalVio(), 0);
  EXPECT_EQ(live.Summary(), reopened.Summary());

  // The replayed rows match the repaired ones cell for cell.
  const Relation* a = sys.database().FindRelation("customer");
  const Relation* b = other.database().FindRelation("customer");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(a->size(), b->size());
  a->ForEach([&](TupleId tid, const Row& row) {
    ASSERT_TRUE(b->IsLive(tid));
    const Row& rb = b->row(tid);
    ASSERT_EQ(row.size(), rb.size());
    for (size_t c = 0; c < row.size(); ++c) {
      EXPECT_EQ(row[c], rb[c]) << "#" << tid << ":" << c;
    }
  });

  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

}  // namespace
}  // namespace semandaq::repair
