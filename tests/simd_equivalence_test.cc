// End-to-end SIMD/scalar equivalence: DetectErrors output and Partition
// contents must be *byte-identical* — same violations in the same order,
// same classes in the same order — across every kernel tier
// (DetectorOptions::simd_level = scalar/SSE2/AVX2) and every thread count,
// over the same relation sweep the snapshot tests use: paper customer,
// generated customer/hospital (with tombstones), empty, NULL-heavy,
// unicode, and typed relations. This is the tentpole's correctness gate:
// vectorization must never be observable in the output.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cfd/cfd_parser.h"
#include "common/simd/simd.h"
#include "detect/native_detector.h"
#include "discovery/partition.h"
#include "relational/encoded_relation.h"
#include "test_util.h"
#include "workload/customer_gen.h"
#include "workload/hospital_gen.h"

namespace semandaq::detect {
namespace {

namespace simd = common::simd;
using discovery::Partition;
using relational::EncodedRelation;
using relational::Relation;
using relational::TupleId;

const simd::Level kLevels[] = {simd::Level::kScalar, simd::Level::kSse2,
                               simd::Level::kAvx2};

std::vector<cfd::Cfd> Parse(const std::string& text) {
  auto r = cfd::ParseCfdSet(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(*r) : std::vector<cfd::Cfd>{};
}

ViolationTable DetectWith(const Relation& rel, const std::vector<cfd::Cfd>& cfds,
                          simd::Level level, size_t num_threads) {
  DetectorOptions options;
  options.simd_level = level;
  options.num_threads = num_threads;
  NativeDetector detector(&rel, cfds, options);
  auto table = detector.Detect();
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  return table.ok() ? std::move(*table) : ViolationTable{};
}

/// Exact (order-sensitive) equality of two violation tables.
void ExpectExactlyEqual(const ViolationTable& a, const ViolationTable& b,
                        const Relation& rel) {
  EXPECT_EQ(a.TotalVio(), b.TotalVio());
  EXPECT_EQ(a.NumViolatingTuples(), b.NumViolatingTuples());
  for (TupleId tid = 0; tid < rel.IdBound(); ++tid) {
    ASSERT_EQ(a.vio(tid), b.vio(tid)) << "vio mismatch at " << tid;
  }
  ASSERT_EQ(a.singles().size(), b.singles().size());
  for (size_t i = 0; i < a.singles().size(); ++i) {
    ASSERT_EQ(a.singles()[i].tid, b.singles()[i].tid) << "single " << i;
    ASSERT_EQ(a.singles()[i].cfd_index, b.singles()[i].cfd_index) << i;
    ASSERT_EQ(a.singles()[i].pattern_index, b.singles()[i].pattern_index) << i;
  }
  ASSERT_EQ(a.groups().size(), b.groups().size());
  for (size_t i = 0; i < a.groups().size(); ++i) {
    const ViolationGroup& ga = a.groups()[i];
    const ViolationGroup& gb = b.groups()[i];
    ASSERT_EQ(ga.fd_group, gb.fd_group) << "group " << i;
    ASSERT_EQ(ga.cfd_index, gb.cfd_index) << "group " << i;
    ASSERT_EQ(ga.lhs_key.size(), gb.lhs_key.size()) << "group " << i;
    for (size_t k = 0; k < ga.lhs_key.size(); ++k) {
      ASSERT_EQ(ga.lhs_key[k], gb.lhs_key[k]) << "group " << i;
    }
    ASSERT_EQ(ga.members.size(), gb.members.size()) << "group " << i;
    for (size_t k = 0; k < ga.members.size(); ++k) {
      ASSERT_EQ(ga.members[k], gb.members[k]) << "group " << i;
      ASSERT_EQ(ga.member_rhs[k], gb.member_rhs[k]) << "group " << i;
      ASSERT_EQ(ga.member_partners[k], gb.member_partners[k]) << "group " << i;
    }
  }
}

/// The core property: for every kernel tier and thread count, the table
/// equals the scalar-serial reference exactly.
void ExpectTierInvariant(const Relation& rel, const std::string& cfd_text) {
  const std::vector<cfd::Cfd> cfds = Parse(cfd_text);
  const ViolationTable reference =
      DetectWith(rel, cfds, simd::Level::kScalar, 1);
  for (const simd::Level level : kLevels) {
    for (const size_t threads : {size_t{1}, size_t{3}}) {
      SCOPED_TRACE(std::string("level=") +
                   std::string(simd::LevelName(level)) +
                   " threads=" + std::to_string(threads));
      ExpectExactlyEqual(reference, DetectWith(rel, cfds, level, threads),
                         rel);
    }
  }
}

TEST(SimdEquivalenceTest, PaperCustomer) {
  ExpectTierInvariant(semandaq::testing::PaperCustomerRelation(),
                      semandaq::testing::PaperCfdText());
}

TEST(SimdEquivalenceTest, GeneratedWorkloadsWithTombstones) {
  for (const uint64_t seed : {1u, 7u, 42u}) {
    workload::CustomerWorkloadOptions copts;
    copts.num_tuples = 500;
    copts.noise_rate = 0.08;
    copts.seed = seed;
    auto cwl = workload::CustomerGenerator::Generate(copts);
    for (TupleId tid = 0; tid < cwl.dirty.IdBound(); ++tid) {
      if (tid % 7 == 3) ASSERT_OK(cwl.dirty.Delete(tid));
    }
    SCOPED_TRACE("customer seed=" + std::to_string(seed));
    ExpectTierInvariant(cwl.dirty, workload::CustomerGenerator::PaperCfds());

    workload::HospitalWorkloadOptions hopts;
    hopts.num_tuples = 300;
    hopts.noise_rate = 0.1;
    hopts.seed = seed;
    auto hwl = workload::HospitalGenerator::Generate(hopts);
    SCOPED_TRACE("hospital seed=" + std::to_string(seed));
    ExpectTierInvariant(hwl.dirty, workload::HospitalGenerator::HospitalCfds());
  }
}

TEST(SimdEquivalenceTest, EmptyRelation) {
  Relation rel("empty", relational::Schema::AllStrings({"A", "B", "C"}));
  ExpectTierInvariant(rel, "empty: [A] -> [B]\nempty: [A=x] -> [B=y]");
}

TEST(SimdEquivalenceTest, NullHeavy) {
  auto rel = semandaq::testing::MakeStringRelation(
      "nullish", {"A", "B", "C"},
      {
          {"", "", ""},
          {"x", "", "1"},
          {"", "y", ""},
          {"x", "", "2"},
          {"", "", ""},
          {"x", "y", ""},
          {"x", "y", "3"},
          {"x", "y", "4"},
      });
  ExpectTierInvariant(rel, "nullish: [A] -> [C]\n"
                           "nullish: [A, B] -> [C]\n"
                           "nullish: [A=x] -> [C=1]");
}

TEST(SimdEquivalenceTest, Unicode) {
  auto rel = semandaq::testing::MakeStringRelation(
      "unicode", {"CITY", "NOTE"},
      {
          {"Z\xC3\xBCrich", "caf\xC3\xA9"},
          {"Z\xC3\xBCrich", "na\xC3\xAFve"},
          {"\xE6\x9D\xB1\xE4\xBA\xAC", "\xF0\x9F\x9A\x80"},
          {"M\xC3\xBCnchen", ""},
      });
  ExpectTierInvariant(rel, "unicode: [CITY] -> [NOTE]");
}

TEST(SimdEquivalenceTest, TypedValues) {
  relational::Schema schema({{"NAME", relational::DataType::kString, {}},
                             {"N", relational::DataType::kInt, {}},
                             {"X", relational::DataType::kDouble, {}}});
  Relation rel("typed", schema);
  using relational::Value;
  rel.MustInsert({Value::String("a"), Value::Int(42), Value::Double(2.5)});
  rel.MustInsert({Value::String("b"), Value::Int(-7), Value::Double(-0.125)});
  rel.MustInsert({Value::Null(), Value::Null(), Value::Null()});
  rel.MustInsert({Value::String("a"), Value::Int(42), Value::Double(3.75)});
  ExpectTierInvariant(rel, "typed: [NAME, N] -> [X]");
}

/// Wide (> 2 column) LHS keys take the CodeVec hash path of the scan;
/// exercise it across tiers too.
TEST(SimdEquivalenceTest, WideLhsKeys) {
  auto wl = workload::CustomerGenerator::Generate({});
  ExpectTierInvariant(wl.dirty, "customer: [CNT, CITY, ZIP] -> [STR]");
}

/// Partition contents must be identical across tiers as well (class ids,
/// members, coverage) — the discovery-side half of the equivalence gate.
TEST(SimdEquivalenceTest, PartitionBuildTierInvariant) {
  workload::CustomerWorkloadOptions opts;
  opts.num_tuples = 700;
  opts.noise_rate = 0.1;
  auto wl = workload::CustomerGenerator::Generate(opts);
  for (TupleId tid = 0; tid < wl.dirty.IdBound(); ++tid) {
    if (tid % 11 == 5) ASSERT_OK(wl.dirty.Delete(tid));
  }
  const EncodedRelation enc(&wl.dirty);
  const std::vector<std::vector<size_t>> col_sets = {
      {0}, {1}, {5}, {1, 3}, {1, 2, 3}, {}};
  for (const auto& cols : col_sets) {
    const Partition want = Partition::Build(enc, cols, simd::Level::kScalar);
    // The row-hash build is the independent semantic reference.
    const Partition row_ref = Partition::Build(wl.dirty, cols);
    for (const simd::Level level : kLevels) {
      const Partition got = Partition::Build(enc, cols, level);
      SCOPED_TRACE(std::string("level=") +
                   std::string(simd::LevelName(level)) +
                   " ncols=" + std::to_string(cols.size()));
      ASSERT_EQ(want.num_classes(), got.num_classes());
      ASSERT_EQ(want.num_tuples(), got.num_tuples());
      ASSERT_EQ(want.classes().size(), got.classes().size());
      for (size_t i = 0; i < want.classes().size(); ++i) {
        ASSERT_EQ(want.classes()[i], got.classes()[i]) << "class " << i;
      }
      for (TupleId tid = 0; tid < wl.dirty.IdBound(); ++tid) {
        ASSERT_EQ(want.ClassOf(tid), got.ClassOf(tid)) << "tid " << tid;
      }
      if (!cols.empty()) {
        ASSERT_EQ(row_ref.num_classes(), got.num_classes());
        ASSERT_EQ(row_ref.num_tuples(), got.num_tuples());
      }
    }
  }
}

}  // namespace
}  // namespace semandaq::detect
