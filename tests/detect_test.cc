#include <gtest/gtest.h>

#include "cfd/cfd_parser.h"
#include "detect/native_detector.h"
#include "detect/sql_detector.h"
#include "detect/sql_generator.h"
#include "test_util.h"

namespace semandaq::detect {
namespace {

using relational::Database;
using relational::Relation;
using relational::TupleId;
using relational::Value;

std::vector<cfd::Cfd> Parse(const std::string& text) {
  auto r = cfd::ParseCfdSet(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(*r) : std::vector<cfd::Cfd>{};
}

// ----------------------------------------------------------- ViolationTable

TEST(ViolationTableTest, SinglesDedupePerCfd) {
  ViolationTable t;
  EXPECT_TRUE(t.AddSingle({3, 0, 0}));
  EXPECT_FALSE(t.AddSingle({3, 0, 1}));  // same CFD, other pattern: no new vio
  EXPECT_TRUE(t.AddSingle({3, 1, 0}));   // different CFD
  EXPECT_EQ(t.vio(3), 2);
  EXPECT_EQ(t.singles().size(), 3u);
  EXPECT_EQ(t.SingleCfdsOf(3), (std::vector<int>{0, 1}));
}

TEST(ViolationTableTest, GroupVioCountsDisagreeingPartners) {
  ViolationTable t;
  ViolationGroup g;
  g.fd_group = 0;
  g.cfd_index = 0;
  g.lhs_key = {Value::String("UK")};
  g.members = {10, 11, 12};
  g.member_rhs = {Value::String("a"), Value::String("a"), Value::String("b")};
  t.AddGroup(g);
  // Tuples 10/11 disagree with 12 only; 12 disagrees with both.
  EXPECT_EQ(t.vio(10), 1);
  EXPECT_EQ(t.vio(11), 1);
  EXPECT_EQ(t.vio(12), 2);
  EXPECT_EQ(t.TotalVio(), 4);
  EXPECT_EQ(t.NumViolatingTuples(), 3u);
  EXPECT_EQ(t.GroupsOf(11), (std::vector<int>{0}));
}

TEST(ViolationTableTest, ViolatingTuplesSorted) {
  ViolationTable t;
  t.AddSingle({9, 0, 0});
  t.AddSingle({2, 0, 0});
  EXPECT_EQ(t.ViolatingTuples(), (std::vector<TupleId>{2, 9}));
}

// ----------------------------------------------------------- NativeDetector

TEST(NativeDetectorTest, PaperExample) {
  Relation rel = semandaq::testing::PaperCustomerRelation();
  NativeDetector detector(&rel, Parse(semandaq::testing::PaperCfdText()));
  ASSERT_OK_AND_ASSIGN(ViolationTable table, detector.Detect());

  // Eve (tid 6) has CC=44 but CNT=US: single-tuple violation of phi4.
  EXPECT_EQ(table.singles().size(), 1u);
  EXPECT_EQ(table.singles()[0].tid, 6);

  // Mike/Rick/Joe share (UK, EH2 4SD) with streets {Mayfield, Crichton,
  // Mayfield}: one multi-tuple group.
  ASSERT_EQ(table.groups().size(), 1u);
  const ViolationGroup& g = table.groups()[0];
  EXPECT_EQ(g.members.size(), 3u);
  // Mike & Joe each disagree with Rick (1); Rick disagrees with both (2).
  EXPECT_EQ(table.vio(0), 1);
  EXPECT_EQ(table.vio(1), 2);
  EXPECT_EQ(table.vio(2), 1);
  // Mary (unique zip), Anna, Bob are clean.
  EXPECT_EQ(table.vio(3), 0);
  EXPECT_EQ(table.vio(4), 0);
  EXPECT_EQ(table.vio(5), 0);
}

TEST(NativeDetectorTest, CleanInstanceHasNoViolations) {
  Relation rel = semandaq::testing::MakeStringRelation(
      "customer", {"NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"},
      {{"A", "UK", "Edinburgh", "EH1", "HighSt", "44", "131"},
       {"B", "UK", "Edinburgh", "EH1", "HighSt", "44", "131"}});
  NativeDetector detector(&rel, Parse(semandaq::testing::PaperCfdText()));
  ASSERT_OK_AND_ASSIGN(ViolationTable table, detector.Detect());
  EXPECT_EQ(table.TotalVio(), 0);
}

TEST(NativeDetectorTest, ConstantPatternIgnoresNullRhs) {
  // NULL CNT is "unknown, not wrong" under [CC=44] -> [CNT=UK].
  Relation rel = semandaq::testing::MakeStringRelation(
      "customer", {"CC", "CNT"}, {{"44", ""}, {"44", "US"}});
  NativeDetector detector(&rel, Parse("customer: [CC=44] -> [CNT=UK]"));
  ASSERT_OK_AND_ASSIGN(ViolationTable table, detector.Detect());
  ASSERT_EQ(table.singles().size(), 1u);
  EXPECT_EQ(table.singles()[0].tid, 1);
}

TEST(NativeDetectorTest, NullLhsExcludedFromMultiTupleGroups) {
  Relation rel = semandaq::testing::MakeStringRelation(
      "t", {"A", "B"}, {{"", "x"}, {"", "y"}, {"1", "x"}, {"1", "y"}});
  NativeDetector detector(&rel, Parse("t: [A] -> [B]"));
  ASSERT_OK_AND_ASSIGN(ViolationTable table, detector.Detect());
  // Only the A=1 pair violates; NULL keys never group.
  ASSERT_EQ(table.groups().size(), 1u);
  EXPECT_EQ(table.groups()[0].members.size(), 2u);
}

TEST(NativeDetectorTest, MultipleVariablePatternsCountOncePerGroup) {
  // Two variable rows of the same embedded FD both cover the tuples; the
  // merged-tableau semantics counts the group once.
  Relation rel = semandaq::testing::MakeStringRelation(
      "t", {"A", "B"}, {{"1", "x"}, {"1", "y"}});
  NativeDetector detector(&rel, Parse("t: [A] -> [B] { (_ | _), (1 | _) }"));
  ASSERT_OK_AND_ASSIGN(ViolationTable table, detector.Detect());
  ASSERT_EQ(table.groups().size(), 1u);
  EXPECT_EQ(table.vio(0), 1);
  EXPECT_EQ(table.vio(1), 1);
}

TEST(NativeDetectorTest, TombstonedTuplesIgnored) {
  Relation rel = semandaq::testing::MakeStringRelation(
      "t", {"A", "B"}, {{"1", "x"}, {"1", "y"}});
  ASSERT_OK(rel.Delete(1));
  NativeDetector detector(&rel, Parse("t: [A] -> [B]"));
  ASSERT_OK_AND_ASSIGN(ViolationTable table, detector.Detect());
  EXPECT_EQ(table.TotalVio(), 0);
}

// -------------------------------------------------------------- SqlGenerator

TEST(SqlGeneratorTest, EmitsExpectedQueryShapes) {
  auto cfds = Parse(
      "customer: [CC] -> [CNT] { (44 | UK) }\n"
      "customer: [CNT=UK, ZIP=_] -> [STR=_]\n");
  auto queries = GenerateDetectionSql(cfds, "customer",
                                      {"__cfd_tableau_0", "__cfd_tableau_1"});
  ASSERT_EQ(queries.size(), 2u);

  // Group 0: constant rows only.
  EXPECT_TRUE(queries[0].has_constant_rows);
  EXPECT_FALSE(queries[0].has_variable_rows);
  EXPECT_NE(queries[0].qc.find("OR tp.\"CC\" IS NULL"), std::string::npos);
  EXPECT_NE(queries[0].qc.find("t.\"CNT\" <> tp.\"CNT\""), std::string::npos);
  EXPECT_NE(queries[0].qc.find("__tid"), std::string::npos);

  // Group 1: variable rows only -> Q_V with GROUP BY / HAVING.
  EXPECT_FALSE(queries[1].has_constant_rows);
  EXPECT_TRUE(queries[1].has_variable_rows);
  EXPECT_NE(queries[1].qv_keys.find("GROUP BY"), std::string::npos);
  EXPECT_NE(queries[1].qv_keys.find("HAVING COUNT(DISTINCT t.\"STR\") > 1"),
            std::string::npos);
  EXPECT_NE(queries[1].qv_members.find(queries[1].keys_relation), std::string::npos);
}

// --------------------------------------------------------------- SqlDetector

void ExpectTablesEquivalent(const ViolationTable& a, const ViolationTable& b,
                            const Relation& rel) {
  EXPECT_EQ(a.TotalVio(), b.TotalVio());
  EXPECT_EQ(a.NumViolatingTuples(), b.NumViolatingTuples());
  rel.ForEach([&](TupleId tid, const relational::Row&) {
    EXPECT_EQ(a.vio(tid), b.vio(tid)) << "vio mismatch at tuple " << tid;
  });
  EXPECT_EQ(a.groups().size(), b.groups().size());
}

TEST(SqlDetectorTest, MatchesNativeOnPaperExample) {
  Relation rel = semandaq::testing::PaperCustomerRelation();
  auto cfds = Parse(semandaq::testing::PaperCfdText());

  NativeDetector native(&rel, cfds);
  ASSERT_OK_AND_ASSIGN(ViolationTable native_table, native.Detect());

  Database db;
  ASSERT_OK(db.AddRelation(rel.Clone()));
  SqlDetector sql(&db, "customer", cfds);
  ASSERT_OK_AND_ASSIGN(ViolationTable sql_table, sql.Detect());

  ExpectTablesEquivalent(native_table, sql_table, rel);
  // The temp tableau relations are cleaned up afterwards.
  for (const auto& name : db.RelationNames()) {
    EXPECT_EQ(name.find("__cfd_"), std::string::npos) << name;
    EXPECT_EQ(name.find("__vio_keys_"), std::string::npos) << name;
  }
}

TEST(SqlDetectorTest, ExposesGeneratedQueries) {
  Relation rel = semandaq::testing::PaperCustomerRelation();
  Database db;
  ASSERT_OK(db.AddRelation(rel.Clone()));
  SqlDetector sql(&db, "customer", Parse(semandaq::testing::PaperCfdText()));
  ASSERT_OK_AND_ASSIGN(ViolationTable table, sql.Detect());
  (void)table;
  ASSERT_FALSE(sql.queries().empty());
  for (const auto& q : sql.queries()) {
    EXPECT_NE(q.qc.find("SELECT"), std::string::npos);
  }
}

TEST(SqlDetectorTest, MissingRelationFails) {
  Database db;
  SqlDetector sql(&db, "nope", Parse("nope: [A] -> [B]"));
  EXPECT_FALSE(sql.Detect().ok());
}

}  // namespace
}  // namespace semandaq::detect
