#include <gtest/gtest.h>

#include "audit/metrics.h"
#include "audit/render.h"
#include "audit/report.h"
#include "cfd/cfd_parser.h"
#include "detect/native_detector.h"
#include "test_util.h"

namespace semandaq::audit {
namespace {

using relational::Relation;
using relational::TupleId;

std::vector<cfd::Cfd> Parse(const std::string& text) {
  auto r = cfd::ParseCfdSet(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(*r) : std::vector<cfd::Cfd>{};
}

AuditOutcome AuditOf(const Relation& rel, const std::string& cfd_text) {
  auto cfds = Parse(cfd_text);
  detect::NativeDetector detector(&rel, cfds);
  auto table = detector.Detect();
  EXPECT_TRUE(table.ok());
  DataAuditor auditor(&rel, cfds);
  auto outcome = auditor.Audit(*table);
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  return std::move(*outcome);
}

TEST(AuditTest, GradeNamesAreStable) {
  EXPECT_STREQ(CleanGradeToString(CleanGrade::kDirty), "dirty");
  EXPECT_STREQ(CleanGradeToString(CleanGrade::kArguablyClean), "arguably clean");
  EXPECT_STREQ(CleanGradeToString(CleanGrade::kProbablyClean), "probably clean");
  EXPECT_STREQ(CleanGradeToString(CleanGrade::kVerifiedClean), "verified clean");
}

TEST(AuditTest, PaperExampleTupleGrades) {
  Relation rel = semandaq::testing::PaperCustomerRelation();
  AuditOutcome outcome = AuditOf(rel, semandaq::testing::PaperCfdText());

  // Eve (6) is a single-tuple violator: dirty.
  EXPECT_EQ(outcome.GradeOf(6), CleanGrade::kDirty);
  // Mike (0) and Joe (2) are in the multi-tuple group but the bulk (2 of 3)
  // agrees with them: arguably clean.
  EXPECT_EQ(outcome.GradeOf(0), CleanGrade::kArguablyClean);
  EXPECT_EQ(outcome.GradeOf(2), CleanGrade::kArguablyClean);
  // Rick (1) is the minority: dirty.
  EXPECT_EQ(outcome.GradeOf(1), CleanGrade::kDirty);
  // Mary (3) violates nothing but no constant-RHS CFD confirms her
  // (CC=44 applies... it does! CC=44 matches and CNT=UK holds): verified.
  EXPECT_EQ(outcome.GradeOf(3), CleanGrade::kVerifiedClean);
  // Anna (4): CC=31, no constant pattern applies: probably clean.
  EXPECT_EQ(outcome.GradeOf(4), CleanGrade::kProbablyClean);
  // Bob (5): CC=1, no constant applies: probably clean.
  EXPECT_EQ(outcome.GradeOf(5), CleanGrade::kProbablyClean);

  EXPECT_EQ(outcome.tuple_counts[static_cast<size_t>(CleanGrade::kDirty)], 2);
  EXPECT_EQ(outcome.tuple_counts[static_cast<size_t>(CleanGrade::kArguablyClean)], 2);
  EXPECT_EQ(outcome.tuple_counts[static_cast<size_t>(CleanGrade::kProbablyClean)], 2);
  EXPECT_EQ(outcome.tuple_counts[static_cast<size_t>(CleanGrade::kVerifiedClean)], 1);
}

TEST(AuditTest, ViolationCompositionPie) {
  Relation rel = semandaq::testing::PaperCustomerRelation();
  AuditOutcome outcome = AuditOf(rel, semandaq::testing::PaperCfdText());
  EXPECT_EQ(outcome.tuples_clean, 3u);        // Mary, Anna, Bob
  EXPECT_EQ(outcome.tuples_single_only, 1u);  // Eve
  EXPECT_EQ(outcome.tuples_multi_only, 3u);   // Mike, Rick, Joe
  EXPECT_EQ(outcome.tuples_both, 0u);
}

TEST(AuditTest, VioDistributionStats) {
  Relation rel = semandaq::testing::PaperCustomerRelation();
  AuditOutcome outcome = AuditOf(rel, semandaq::testing::PaperCfdText());
  // vio: Mike 1, Rick 2, Joe 1, Eve 1 -> total 5, max 2, min 1.
  EXPECT_EQ(outcome.total_vio, 5);
  EXPECT_EQ(outcome.max_vio, 2);
  EXPECT_EQ(outcome.min_vio_nonzero, 1);
  EXPECT_NEAR(outcome.avg_vio_violating, 5.0 / 4.0, 1e-9);
  EXPECT_EQ(outcome.num_groups, 1u);
  EXPECT_EQ(outcome.max_group_size, 3u);
}

TEST(AuditTest, AttributeLevelStats) {
  Relation rel = semandaq::testing::PaperCustomerRelation();
  AuditOutcome outcome = AuditOf(rel, semandaq::testing::PaperCfdText());
  ASSERT_EQ(outcome.attr_stats.size(), 7u);
  // STR (col 4) carries the multi-tuple violation: some cells not probably
  // clean.
  const AttributeStats& str_stats = outcome.attr_stats[4];
  EXPECT_LT(str_stats.pct_probably(), 100.0);
  // NAME (col 0) is never implicated: all cells at least probably clean.
  const AttributeStats& name_stats = outcome.attr_stats[0];
  EXPECT_DOUBLE_EQ(name_stats.pct_probably(), 100.0);
  // Cumulative nesting always holds.
  for (const AttributeStats& s : outcome.attr_stats) {
    EXPECT_LE(s.pct_verified(), s.pct_probably() + 1e-9);
    EXPECT_LE(s.pct_probably(), s.pct_arguably() + 1e-9);
  }
}

TEST(AuditTest, CleanInstanceAllProbablyOrBetter) {
  Relation rel = semandaq::testing::MakeStringRelation(
      "customer", {"NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"},
      {{"A", "UK", "Edi", "EH1", "HighSt", "44", "131"}});
  AuditOutcome outcome = AuditOf(rel, semandaq::testing::PaperCfdText());
  EXPECT_EQ(outcome.GradeOf(0), CleanGrade::kVerifiedClean);
  EXPECT_EQ(outcome.total_vio, 0);
}

TEST(ReportTest, BuildsBarsAndPie) {
  Relation rel = semandaq::testing::PaperCustomerRelation();
  AuditOutcome outcome = AuditOf(rel, semandaq::testing::PaperCfdText());
  QualityReport report = BuildQualityReport(outcome, rel.schema());
  ASSERT_EQ(report.bars.size(), 7u);
  EXPECT_EQ(report.bars[0].attribute, "NAME");
  ASSERT_EQ(report.pie.size(), 4u);
  double pct_total = 0;
  for (const auto& slice : report.pie) pct_total += slice.pct;
  EXPECT_NEAR(pct_total, 100.0, 1e-6);
  EXPECT_EQ(report.num_tuples, 7u);
}

TEST(ReportTest, BarsCsvHasHeaderAndRows) {
  Relation rel = semandaq::testing::PaperCustomerRelation();
  AuditOutcome outcome = AuditOf(rel, semandaq::testing::PaperCfdText());
  QualityReport report = BuildQualityReport(outcome, rel.schema());
  const std::string csv = report.BarsToCsv();
  EXPECT_NE(csv.find("attribute,pct_verified"), std::string::npos);
  EXPECT_NE(csv.find("ZIP"), std::string::npos);
}

TEST(RenderTest, QualityMapShadesByVio) {
  Relation rel = semandaq::testing::PaperCustomerRelation();
  auto cfds = Parse(semandaq::testing::PaperCfdText());
  detect::NativeDetector detector(&rel, cfds);
  ASSERT_OK_AND_ASSIGN(auto table, detector.Detect());
  const std::string map = AsciiRender::QualityMap(rel, table);
  EXPECT_NE(map.find("[.] vio=1"), std::string::npos);  // Mike
  EXPECT_NE(map.find("[:] vio=2"), std::string::npos);  // Rick
  EXPECT_NE(map.find("[ ] vio=0"), std::string::npos);  // clean tuples
}

TEST(RenderTest, QualityMapTruncates) {
  Relation rel = semandaq::testing::PaperCustomerRelation();
  detect::ViolationTable empty;
  const std::string map = AsciiRender::QualityMap(rel, empty, 2);
  EXPECT_NE(map.find("5 more tuple(s)"), std::string::npos);
}

TEST(RenderTest, BarChartAndPieAndStats) {
  Relation rel = semandaq::testing::PaperCustomerRelation();
  AuditOutcome outcome = AuditOf(rel, semandaq::testing::PaperCfdText());
  QualityReport report = BuildQualityReport(outcome, rel.schema());
  const std::string bars = AsciiRender::BarChart(report);
  EXPECT_NE(bars.find("NAME"), std::string::npos);
  EXPECT_NE(bars.find("V="), std::string::npos);
  const std::string pie = AsciiRender::PieChart(report);
  EXPECT_NE(pie.find("single-tuple only"), std::string::npos);
  const std::string stats = AsciiRender::Statistics(report);
  EXPECT_NE(stats.find("max vio(t)"), std::string::npos);
  EXPECT_NE(stats.find("multi-tuple groups"), std::string::npos);
}

}  // namespace
}  // namespace semandaq::audit
