#include <gtest/gtest.h>

#include "cfd/cfd_parser.h"
#include "detect/native_detector.h"
#include "test_util.h"
#include "workload/customer_gen.h"
#include "workload/hospital_gen.h"
#include "workload/quality.h"

namespace semandaq::workload {
namespace {

std::vector<cfd::Cfd> Parse(const std::string& text) {
  auto r = cfd::ParseCfdSet(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(*r) : std::vector<cfd::Cfd>{};
}

TEST(CustomerGeneratorTest, CleanDataSatisfiesSigma) {
  CustomerWorkloadOptions opts;
  opts.num_tuples = 500;
  opts.noise_rate = 0.1;
  opts.seed = 5;
  auto wl = CustomerGenerator::Generate(opts);
  detect::NativeDetector detector(&wl.clean, Parse(CustomerGenerator::PaperCfds()));
  ASSERT_OK_AND_ASSIGN(auto table, detector.Detect());
  EXPECT_EQ(table.TotalVio(), 0) << "master data violates its own Sigma";
}

TEST(CustomerGeneratorTest, NoiseCountMatchesRate) {
  CustomerWorkloadOptions opts;
  opts.num_tuples = 1000;
  opts.noise_rate = 0.07;
  opts.seed = 6;
  auto wl = CustomerGenerator::Generate(opts);
  EXPECT_EQ(wl.injected.size(), 70u);
  // Every injected error actually differs.
  for (const auto& e : wl.injected) {
    EXPECT_NE(e.clean, e.dirty);
    EXPECT_EQ(wl.dirty.cell(e.tid, e.col), e.dirty);
    EXPECT_EQ(wl.clean.cell(e.tid, e.col), e.clean);
  }
}

TEST(CustomerGeneratorTest, DeterministicUnderSeed) {
  CustomerWorkloadOptions opts;
  opts.num_tuples = 100;
  opts.seed = 7;
  auto a = CustomerGenerator::Generate(opts);
  auto b = CustomerGenerator::Generate(opts);
  ASSERT_EQ(a.dirty.size(), b.dirty.size());
  a.dirty.ForEach([&](relational::TupleId tid, const relational::Row& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      ASSERT_EQ(row[c], b.dirty.cell(tid, c));
    }
  });
}

TEST(CustomerGeneratorTest, ConditionalStructureIsPresent) {
  // The motivating property: [CNT, ZIP] -> [STR] fails globally but holds on
  // the UK fragment of the clean data.
  CustomerWorkloadOptions opts;
  opts.num_tuples = 600;
  opts.noise_rate = 0.0;
  opts.seed = 8;
  auto wl = CustomerGenerator::Generate(opts);

  detect::NativeDetector global(&wl.clean, Parse("customer: [CNT, ZIP] -> [STR]"));
  ASSERT_OK_AND_ASSIGN(auto gtable, global.Detect());
  EXPECT_GT(gtable.TotalVio(), 0) << "US zips should share streets";

  detect::NativeDetector uk(&wl.clean, Parse("customer: [CNT=UK, ZIP=_] -> [STR=_]"));
  ASSERT_OK_AND_ASSIGN(auto uktable, uk.Detect());
  EXPECT_EQ(uktable.TotalVio(), 0);
}

TEST(CustomerGeneratorTest, DirtyDataViolatesSigma) {
  CustomerWorkloadOptions opts;
  opts.num_tuples = 500;
  opts.noise_rate = 0.1;
  opts.seed = 9;
  auto wl = CustomerGenerator::Generate(opts);
  detect::NativeDetector detector(&wl.dirty, Parse(CustomerGenerator::PaperCfds()));
  ASSERT_OK_AND_ASSIGN(auto table, detector.Detect());
  EXPECT_GT(table.TotalVio(), 0);
}

TEST(HospitalGeneratorTest, CleanDataSatisfiesSigma) {
  HospitalWorkloadOptions opts;
  opts.num_tuples = 400;
  opts.noise_rate = 0.1;
  opts.seed = 10;
  auto wl = HospitalGenerator::Generate(opts);
  detect::NativeDetector detector(&wl.clean, Parse(HospitalGenerator::HospitalCfds()));
  ASSERT_OK_AND_ASSIGN(auto table, detector.Detect());
  EXPECT_EQ(table.TotalVio(), 0);
}

TEST(HospitalGeneratorTest, InjectedErrorsRecorded) {
  HospitalWorkloadOptions opts;
  opts.num_tuples = 200;
  opts.noise_rate = 0.05;
  opts.seed = 11;
  auto wl = HospitalGenerator::Generate(opts);
  EXPECT_EQ(wl.injected.size(), 10u);
  for (const auto& e : wl.injected) {
    EXPECT_NE(e.clean, e.dirty);
  }
}

TEST(QualityTest, PerfectRepairScoresOne) {
  CustomerWorkloadOptions opts;
  opts.num_tuples = 100;
  opts.noise_rate = 0.1;
  opts.seed = 12;
  auto wl = CustomerGenerator::Generate(opts);
  // "Repairing" by copying the gold standard: precision = recall = 1.
  auto q = EvaluateRepair(wl.clean, wl.dirty, wl.clean);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
  EXPECT_EQ(q.residual_errors, 0u);
  EXPECT_EQ(q.corrected, q.error_cells);
}

TEST(QualityTest, NoOpRepairScoresZeroRecall) {
  CustomerWorkloadOptions opts;
  opts.num_tuples = 100;
  opts.noise_rate = 0.1;
  opts.seed = 13;
  auto wl = CustomerGenerator::Generate(opts);
  auto q = EvaluateRepair(wl.clean, wl.dirty, wl.dirty);
  EXPECT_DOUBLE_EQ(q.recall, 0.0);
  EXPECT_EQ(q.changed_cells, 0u);
  // Precision of doing nothing is vacuously 1.
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
}

TEST(QualityTest, DamagingRepairScoresLowPrecision) {
  CustomerWorkloadOptions opts;
  opts.num_tuples = 50;
  opts.noise_rate = 0.0;
  opts.seed = 14;
  auto wl = CustomerGenerator::Generate(opts);
  relational::Relation vandalized = wl.dirty.Clone();
  ASSERT_OK(vandalized.SetCell(0, 0, relational::Value::String("XXXX")));
  auto q = EvaluateRepair(wl.clean, wl.dirty, vandalized);
  EXPECT_EQ(q.damaged, 1u);
  EXPECT_DOUBLE_EQ(q.precision, 0.0);
}

TEST(QualityTest, ToStringMentionsAllFields) {
  RepairQuality q;
  const std::string s = q.ToString();
  EXPECT_NE(s.find("precision"), std::string::npos);
  EXPECT_NE(s.find("recall"), std::string::npos);
}

}  // namespace
}  // namespace semandaq::workload
