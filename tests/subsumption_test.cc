#include <gtest/gtest.h>

#include "cfd/cfd_parser.h"
#include "cfd/subsumption.h"
#include "test_util.h"

namespace semandaq::cfd {
namespace {

using relational::Value;

Cfd Parse1(const std::string& text) {
  auto r = ParseCfd(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(*r) : Cfd{};
}

std::vector<Cfd> ParseN(const std::string& text) {
  auto r = ParseCfdSet(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(*r) : std::vector<Cfd>{};
}

PatternTuple Row1(const Cfd& c) { return c.tableau()[0]; }

TEST(PatternSubsumesTest, WildcardLhsSubsumesConstantLhs) {
  // (_, _ || _) covers (UK, _ || _): broader scope, same demand.
  Cfd general = Parse1("t: [A, B] -> [C]");
  Cfd specific = Parse1("t: [A=UK, B=_] -> [C=_]");
  EXPECT_TRUE(PatternSubsumes(Row1(general), Row1(specific)));
  EXPECT_FALSE(PatternSubsumes(Row1(specific), Row1(general)));
}

TEST(PatternSubsumesTest, DifferentConstantsDoNotSubsume) {
  Cfd a = Parse1("t: [A=UK] -> [B=_]");
  Cfd b = Parse1("t: [A=US] -> [B=_]");
  EXPECT_FALSE(PatternSubsumes(Row1(a), Row1(b)));
  EXPECT_FALSE(PatternSubsumes(Row1(b), Row1(a)));
}

TEST(PatternSubsumesTest, ConstantRhsImpliesVariableRhsInScope) {
  // [A=44] -> [B=UK] forces all 44-tuples to agree on B, which is what
  // [A=44] -> [B=_] asks.
  Cfd constant = Parse1("t: [A=44] -> [B=UK]");
  Cfd variable = Parse1("t: [A=44] -> [B=_]");
  EXPECT_TRUE(PatternSubsumes(Row1(constant), Row1(variable)));
  // The converse is false: agreement does not pin the value.
  EXPECT_FALSE(PatternSubsumes(Row1(variable), Row1(constant)));
}

TEST(PatternSubsumesTest, EqualRowsSubsumeEachOther) {
  Cfd a = Parse1("t: [A=1] -> [B=2]");
  Cfd b = Parse1("t: [A=1] -> [B=2]");
  EXPECT_TRUE(PatternSubsumes(Row1(a), Row1(b)));
  EXPECT_TRUE(PatternSubsumes(Row1(b), Row1(a)));
}

TEST(CfdSubsumesTest, RequiresSameEmbeddedFd) {
  Cfd a = Parse1("t: [A] -> [B]");
  Cfd b = Parse1("t: [A] -> [C]");
  Cfd c = Parse1("other: [A] -> [B]");
  EXPECT_FALSE(CfdSubsumes(a, b));
  EXPECT_FALSE(CfdSubsumes(a, c));
  EXPECT_TRUE(CfdSubsumes(a, a));
}

TEST(CfdSubsumesTest, TableauCoverage) {
  Cfd general = Parse1("t: [A] -> [B]");  // all-wildcard
  Cfd specific = Parse1("t: [A] -> [B] { (1 | _), (2 | _) }");
  EXPECT_TRUE(CfdSubsumes(general, specific));
  EXPECT_FALSE(CfdSubsumes(specific, general));
}

TEST(RemoveSubsumedTest, DropsRowsCoveredByWildcardRow) {
  auto pruned = RemoveSubsumed(ParseN("t: [A] -> [B]\n"
                                      "t: [A=1] -> [B=_]\n"));
  ASSERT_EQ(pruned.size(), 1u);
  EXPECT_TRUE(pruned[0].IsStandardFd());
}

TEST(RemoveSubsumedTest, KeepsOneCopyOfDuplicates) {
  auto pruned = RemoveSubsumed(ParseN("t: [A=1] -> [B=2]\n"
                                      "t: [A=1] -> [B=2]\n"));
  ASSERT_EQ(pruned.size(), 1u);
}

TEST(RemoveSubsumedTest, AugmentationDropsWiderVariableFd) {
  // A -> C (pure FD) makes the variable CFD on {A,B} -> C redundant.
  auto pruned = RemoveSubsumed(ParseN("t: [A] -> [C]\n"
                                      "t: [A, B] -> [C]\n"
                                      "t: [A=1, B=_] -> [C=_]\n"));
  ASSERT_EQ(pruned.size(), 1u);
  EXPECT_EQ(pruned[0].lhs_attrs().size(), 1u);
}

TEST(RemoveSubsumedTest, AugmentationKeepsConstantDemands) {
  // The constant binding is NOT implied by the pure FD: it pins a value.
  auto pruned = RemoveSubsumed(ParseN("t: [A] -> [C]\n"
                                      "t: [A=1, B=2] -> [C=3]\n"));
  EXPECT_EQ(pruned.size(), 2u);
}

TEST(RemoveSubsumedTest, IndependentCfdsUntouched) {
  auto in = ParseN(semandaq::testing::PaperCfdText());
  auto pruned = RemoveSubsumed(in);
  EXPECT_EQ(pruned.size(), in.size());
}

TEST(RemoveSubsumedTest, MergesNothingAcrossRelations) {
  auto pruned = RemoveSubsumed(ParseN("t: [A] -> [B]\n"
                                      "s: [A=1] -> [B=_]\n"));
  EXPECT_EQ(pruned.size(), 2u);
}

}  // namespace
}  // namespace semandaq::cfd
