#include <gtest/gtest.h>

#include "cfd/cfd_parser.h"
#include "cfd/tableau_store.h"
#include "test_util.h"

namespace semandaq::cfd {
namespace {

using relational::Database;
using relational::Relation;
using relational::Value;

std::vector<Cfd> Parse(const std::string& text) {
  auto r = ParseCfdSet(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(*r) : std::vector<Cfd>{};
}

TEST(TableauStoreTest, StoreCreatesTableauAndMetaRelations) {
  Database db;
  std::vector<std::string> names;
  ASSERT_OK(TableauStore::Store(Parse("customer: [CC=44] -> [CNT=UK]\n"
                                      "customer: [CNT, ZIP] -> [CITY]\n"),
                                &db, &names));
  ASSERT_EQ(names.size(), 2u);
  EXPECT_TRUE(db.HasRelation(TableauStore::kMetaRelation));
  EXPECT_TRUE(db.HasRelation(names[0]));
  EXPECT_TRUE(db.HasRelation(names[1]));

  // Wildcards are stored as NULL; constants as values.
  const Relation* tab0 = db.FindRelation(names[0]);
  ASSERT_EQ(tab0->size(), 1u);
  EXPECT_EQ(tab0->cell(0, 0), Value::String("44"));
  EXPECT_EQ(tab0->cell(0, 1), Value::String("UK"));
  const Relation* tab1 = db.FindRelation(names[1]);
  EXPECT_TRUE(tab1->cell(0, 0).is_null());
  EXPECT_TRUE(tab1->cell(0, 2).is_null());
}

TEST(TableauStoreTest, ProvenanceColumnsRecordCfdAndPattern) {
  Database db;
  std::vector<std::string> names;
  ASSERT_OK(TableauStore::Store(
      Parse("t: [A] -> [B] { (1 | x), (2 | _) }"), &db, &names));
  const Relation* tab = db.FindRelation(names[0]);
  ASSERT_EQ(tab->size(), 2u);
  const int cfd_col = tab->schema().IndexOf("__cfd_id");
  const int pat_col = tab->schema().IndexOf("__pattern_id");
  ASSERT_GE(cfd_col, 0);
  ASSERT_GE(pat_col, 0);
  EXPECT_EQ(tab->cell(0, static_cast<size_t>(cfd_col)).AsInt(), 0);
  EXPECT_EQ(tab->cell(0, static_cast<size_t>(pat_col)).AsInt(), 0);
  EXPECT_EQ(tab->cell(1, static_cast<size_t>(pat_col)).AsInt(), 1);
}

TEST(TableauStoreTest, RoundTripPreservesSemantics) {
  Database db;
  const auto original = Parse(
      "customer: [CC] -> [CNT] { (44 | UK), (31 | NL) }\n"
      "customer: [CNT=UK, ZIP=_] -> [STR=_]\n"
      "customer: [CNT, ZIP] -> [CITY]\n");
  ASSERT_OK(TableauStore::Store(original, &db));
  ASSERT_OK_AND_ASSIGN(auto loaded, TableauStore::Load(db));

  // Groups: [CC]->[CNT], [CNT,ZIP]->[STR], [CNT,ZIP]->[CITY].
  ASSERT_EQ(loaded.size(), 3u);
  size_t total_rows = 0;
  for (const Cfd& c : loaded) total_rows += c.tableau().size();
  EXPECT_EQ(total_rows, 4u);
  // Spot-check the constant group survived.
  bool found_44 = false;
  for (const Cfd& c : loaded) {
    for (const PatternTuple& pt : c.tableau()) {
      if (pt.rhs.is_constant() && pt.rhs.constant() == Value::String("UK")) {
        found_44 = true;
        EXPECT_EQ(c.rhs_attr(), "CNT");
      }
    }
  }
  EXPECT_TRUE(found_44);
}

TEST(TableauStoreTest, StoreReplacesPreviousEncoding) {
  Database db;
  ASSERT_OK(TableauStore::Store(Parse("t: [A] -> [B]\nt: [B] -> [C]\n"), &db));
  ASSERT_OK(TableauStore::Store(Parse("t: [A] -> [B]\n"), &db));
  size_t tableaux = 0;
  for (const auto& name : db.RelationNames()) {
    if (name.find("__cfd_tableau_") == 0) ++tableaux;
  }
  EXPECT_EQ(tableaux, 1u);
}

TEST(TableauStoreTest, ClearDropsEverything) {
  Database db;
  ASSERT_OK(TableauStore::Store(Parse("t: [A] -> [B]\n"), &db));
  TableauStore::Clear(&db);
  EXPECT_EQ(db.size(), 0u);
  EXPECT_FALSE(TableauStore::Load(db).ok());
}

TEST(TableauStoreTest, TypedTargetRelationTypesTableauColumns) {
  Database db;
  relational::Schema schema;
  ASSERT_OK(schema.AddAttribute({"CC", relational::DataType::kInt, {}}));
  ASSERT_OK(schema.AddAttribute({"CNT", relational::DataType::kString, {}}));
  Relation rel{"t", schema};
  rel.MustInsert({Value::Int(44), Value::String("UK")});
  ASSERT_OK(db.AddRelation(std::move(rel)));

  auto cfds = Parse("t: [CC=44] -> [CNT=UK]");
  ASSERT_OK(cfds[0].Resolve(db.FindRelation("t")->schema()));
  std::vector<std::string> names;
  ASSERT_OK(TableauStore::Store(cfds, &db, &names));
  const Relation* tab = db.FindRelation(names[0]);
  // The CC pattern column carries INT 44, matching the data type.
  EXPECT_EQ(tab->cell(0, 0), Value::Int(44));
}

}  // namespace
}  // namespace semandaq::cfd
