// The server's concurrency contract under real thread interleaving: N
// reader sessions hammer detect/mine against epochs they pin while one
// writer keeps appending batches — and EVERY reader result must be
// byte-identical to a serial recomputation against a standalone rebuild
// of exactly the epoch it pinned. This is the end-to-end composition of
// the determinism invariant (same bytes across thread counts and SIMD
// tiers) with snapshot immutability (pins never observe later writes).

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cfd/cfd_parser.h"
#include "detect/native_detector.h"
#include "discovery/cfd_miner.h"
#include "relational/encoded_relation.h"
#include "relational/relation.h"
#include "relational/value.h"
#include "server/service.h"
#include "test_util.h"

namespace semandaq::server {
namespace {

using relational::EncodedRelation;
using relational::Relation;
using relational::Row;
using relational::TupleId;
using relational::Value;

constexpr size_t kReaders = 6;
constexpr size_t kReadsPerReader = 6;
constexpr size_t kWriterBatches = 40;

std::vector<cfd::Cfd> TestCfds() {
  auto r = cfd::ParseCfdSet(
      "customer: [CNT=UK, ZIP=_] -> [STR=_]\n"
      "customer: [CC] -> [CNT] { (44 | UK), (31 | NL), (1 | US) }\n");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(*r) : std::vector<cfd::Cfd>{};
}

/// Canonical detect output: the summary line plus every violating tuple
/// id with its violation count — enough to pin down the full table.
std::string CanonicalDetect(const detect::ViolationTable& table) {
  std::string out = table.Summary();
  for (TupleId tid : table.ViolatingTuples()) {
    out += " " + std::to_string(tid) + ":" + std::to_string(table.vio(tid));
  }
  return out;
}

std::string CanonicalMine(const std::vector<cfd::Cfd>& mined) {
  std::string out;
  for (const auto& c : mined) out += c.ToString() + "\n";
  return out;
}

/// One observation: the pinned snapshot and what a reader computed on it.
struct Observation {
  SnapshotPtr snap;
  bool is_mine = false;
  std::string result;
};

/// Serial ground truth: rebuild a standalone relation from the pinned
/// snapshot's rows (append-only writer, so tuple ids are dense and
/// preserved), encode it from scratch on this thread, and rerun the
/// engine with one lane.
std::string SerialRecompute(const Observation& obs,
                            const std::vector<cfd::Cfd>& cfds) {
  Relation rebuilt{obs.snap->name, obs.snap->relation.schema()};
  const TupleId bound = obs.snap->relation.IdBound();
  for (TupleId tid = 0; tid < bound; ++tid) {
    EXPECT_TRUE(obs.snap->relation.IsLive(tid));
    rebuilt.MustInsert(obs.snap->relation.row(tid));
  }
  EncodedRelation enc(&rebuilt);
  if (obs.is_mine) {
    discovery::CfdMiner miner(&rebuilt, {});
    auto mined = miner.Mine();
    EXPECT_TRUE(mined.ok()) << mined.status().ToString();
    return mined.ok() ? CanonicalMine(*mined) : std::string();
  }
  detect::DetectorOptions options;  // num_threads = 1: the serial scan
  detect::NativeDetector det(&rebuilt, cfds, options);
  det.set_encoded(&enc);
  auto table = det.Detect();
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  return table.ok() ? CanonicalDetect(*table) : std::string();
}

Row CustomerRow(size_t seq) {
  // Cycle through a small value pool so appended rows join existing
  // violation groups (the interesting case) instead of being inert.
  static const char* kCnt[] = {"UK", "NL", "US"};
  static const char* kCc[] = {"44", "31", "1"};
  const size_t k = seq % 3;
  Row row;
  row.push_back(Value::String("writer_" + std::to_string(seq)));  // NAME
  row.push_back(Value::String(kCnt[(k + seq / 7) % 3]));          // CNT
  row.push_back(Value::String("Springfield"));                    // CITY
  row.push_back(Value::String("Z" + std::to_string(seq % 5)));    // ZIP
  row.push_back(Value::String("Main St " + std::to_string(seq % 4)));
  row.push_back(Value::String(kCc[k]));                           // CC
  row.push_back(Value::String("131"));                            // AC
  return row;
}

TEST(ServerConcurrencyTest, ReadersAreByteIdenticalToSerialRunsOnTheirEpoch) {
  SemandaqService service;
  SemandaqService::SessionState boot;
  {
    auto r = service.Execute(&boot, "gen customer 400 10");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  const std::vector<cfd::Cfd> cfds = TestCfds();
  for (const auto& c : cfds) {
    ASSERT_OK(service.system_unsynchronized().constraints().AddCfd(c));
  }

  std::atomic<bool> writer_done{false};
  std::vector<std::vector<Observation>> observed(kReaders);

  std::thread writer([&] {
    for (size_t b = 0; b < kWriterBatches; ++b) {
      std::vector<Row> batch;
      for (size_t i = 0; i < 3; ++i) batch.push_back(CustomerRow(b * 3 + i));
      auto appended = service.AppendBatch("customer", std::move(batch));
      EXPECT_TRUE(appended.ok()) << appended.status().ToString();
      std::this_thread::yield();
    }
    writer_done.store(true);
  });

  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      for (size_t i = 0; i < kReadsPerReader; ++i) {
        Observation obs;
        obs.snap = service.Pin("customer");
        ASSERT_NE(obs.snap, nullptr);
        // Lease worker lanes the way the command layer does: contended
        // requests degrade toward serial, output unchanged.
        ThreadLease lease = service.scheduler().Acquire((r % 4) + 1);
        obs.is_mine = (r + i) % 3 == 0;
        if (obs.is_mine) {
          discovery::CfdMinerOptions options;
          options.num_threads = lease.lanes();
          options.pool = lease.pool();
          discovery::CfdMiner miner(&obs.snap->relation, options);
          auto mined = miner.Mine();
          ASSERT_TRUE(mined.ok()) << mined.status().ToString();
          obs.result = CanonicalMine(*mined);
        } else {
          detect::DetectorOptions options;
          options.num_threads = lease.lanes();
          detect::NativeDetector det(&obs.snap->relation, cfds, options);
          det.set_thread_pool(lease.pool());
          det.set_encoded(&*obs.snap->encoded);
          auto table = det.Detect();
          ASSERT_TRUE(table.ok()) << table.status().ToString();
          obs.result = CanonicalDetect(*table);
        }
        observed[r].push_back(std::move(obs));
      }
    });
  }
  for (auto& t : readers) t.join();
  writer.join();
  ASSERT_TRUE(writer_done.load());

  // Epochs only ever grow, and a pinned epoch's size is frozen: relation
  // size must be monotone in epoch across every observation.
  for (const auto& per_reader : observed) {
    for (size_t i = 1; i < per_reader.size(); ++i) {
      ASSERT_GE(per_reader[i].snap->epoch, per_reader[i - 1].snap->epoch);
      ASSERT_GE(per_reader[i].snap->relation.size(),
                per_reader[i - 1].snap->relation.size());
    }
  }

  // The core assertion: every concurrent result is byte-identical to the
  // serial recomputation against its own pinned epoch.
  size_t checked = 0;
  for (const auto& per_reader : observed) {
    for (const Observation& obs : per_reader) {
      ASSERT_EQ(obs.result, SerialRecompute(obs, cfds))
          << "epoch " << obs.snap->epoch << " size "
          << obs.snap->relation.size();
      ++checked;
    }
  }
  EXPECT_EQ(checked, kReaders * kReadsPerReader);

  // The final epoch contains every appended row.
  SnapshotPtr last = service.Pin("customer");
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->relation.size(), 400u + kWriterBatches * 3);

  // All leases returned: the full lane budget is free again.
  EXPECT_EQ(service.scheduler().available(), service.scheduler().total_lanes());
}

}  // namespace
}  // namespace semandaq::server
