#include <gtest/gtest.h>

#include "cfd/cfd_parser.h"
#include "detect/native_detector.h"
#include "discovery/cfd_miner.h"
#include "discovery/fd_miner.h"
#include "discovery/partition.h"
#include "test_util.h"
#include "workload/customer_gen.h"

namespace semandaq::discovery {
namespace {

using relational::Relation;
using relational::Value;

// -------------------------------------------------------------- Partition --

TEST(PartitionTest, BuildGroupsEqualValues) {
  Relation rel = semandaq::testing::MakeStringRelation(
      "t", {"A", "B"}, {{"x", "1"}, {"x", "2"}, {"y", "1"}, {"x", "3"}});
  Partition p = Partition::Build(rel, {0});
  EXPECT_EQ(p.num_classes(), 2u);
  EXPECT_EQ(p.num_tuples(), 4u);
  ASSERT_EQ(p.classes().size(), 1u);  // only {x} is non-singleton
  EXPECT_EQ(p.classes()[0].size(), 3u);
  EXPECT_EQ(p.ClassOf(0), p.ClassOf(1));
  EXPECT_NE(p.ClassOf(0), p.ClassOf(2));
}

TEST(PartitionTest, NullsExcluded) {
  Relation rel = semandaq::testing::MakeStringRelation(
      "t", {"A"}, {{"x"}, {""}, {"x"}});
  Partition p = Partition::Build(rel, {0});
  EXPECT_EQ(p.num_tuples(), 2u);
  EXPECT_EQ(p.ClassOf(1), -1);
}

TEST(PartitionTest, IntersectIsProductPartition) {
  Relation rel = semandaq::testing::MakeStringRelation(
      "t", {"A", "B"}, {{"x", "1"}, {"x", "1"}, {"x", "2"}, {"y", "1"}});
  Partition pa = Partition::Build(rel, {0});
  Partition pb = Partition::Build(rel, {1});
  Partition pab = Partition::Intersect(pa, pb);
  Partition direct = Partition::Build(rel, {0, 1});
  EXPECT_EQ(pab.num_classes(), direct.num_classes());
  EXPECT_EQ(pab.num_tuples(), direct.num_tuples());
}

TEST(PartitionTest, RefinesDetectsFd) {
  // A -> B holds; B -> A does not (B=1 spans A=x and A=y).
  Relation rel = semandaq::testing::MakeStringRelation(
      "t", {"A", "B"}, {{"x", "1"}, {"x", "1"}, {"y", "2"}, {"z", "1"}});
  Partition pa = Partition::Build(rel, {0});
  Partition pab = Partition::Build(rel, {0, 1});
  EXPECT_TRUE(pa.Refines(pab));
  Partition pb = Partition::Build(rel, {1});
  EXPECT_FALSE(pb.Refines(pab));
}

// ---------------------------------------------------------------- FdMiner --

TEST(FdMinerTest, HoldsChecksSingleFd) {
  Relation rel = semandaq::testing::MakeStringRelation(
      "t", {"A", "B"}, {{"x", "1"}, {"x", "1"}, {"y", "2"}});
  EXPECT_TRUE(FdMiner::Holds(rel, {0}, 1));
  Relation bad = semandaq::testing::MakeStringRelation(
      "t", {"A", "B"}, {{"x", "1"}, {"x", "2"}});
  EXPECT_FALSE(FdMiner::Holds(bad, {0}, 1));
}

TEST(FdMinerTest, FindsPlantedFds) {
  // ZIP -> CITY and ZIP -> STATE planted; CITY does not determine ZIP.
  Relation rel = semandaq::testing::MakeStringRelation(
      "t", {"ZIP", "CITY", "STATE"},
      {{"1", "a", "s1"}, {"1", "a", "s1"}, {"2", "a", "s1"}, {"3", "b", "s2"}});
  FdMiner miner(&rel);
  auto fds = miner.Mine();
  auto has_fd = [&](std::vector<size_t> lhs, size_t rhs) {
    for (const auto& fd : fds) {
      if (fd.lhs_cols == lhs && fd.rhs_col == rhs) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_fd({0}, 1));  // ZIP -> CITY
  EXPECT_TRUE(has_fd({0}, 2));  // ZIP -> STATE
  EXPECT_FALSE(has_fd({1}, 0)); // CITY -/-> ZIP
}

TEST(FdMinerTest, OnlyMinimalFdsEmitted) {
  // A -> C holds, so {A,B} -> C must not be emitted.
  Relation rel = semandaq::testing::MakeStringRelation(
      "t", {"A", "B", "C"},
      {{"x", "1", "c1"}, {"x", "2", "c1"}, {"y", "1", "c2"}});
  FdMiner miner(&rel);
  auto fds = miner.Mine();
  for (const auto& fd : fds) {
    if (fd.rhs_col == 2) {
      EXPECT_EQ(fd.lhs_cols.size(), 1u) << "non-minimal FD emitted";
    }
  }
}

TEST(FdMinerTest, MaxLhsBoundsSearch) {
  Relation rel = semandaq::testing::MakeStringRelation(
      "t", {"A", "B", "C", "D"},
      {{"1", "2", "3", "4"}, {"1", "2", "3", "4"}});
  FdMinerOptions opts;
  opts.max_lhs = 1;
  FdMiner miner(&rel, opts);
  for (const auto& fd : miner.Mine()) {
    EXPECT_LE(fd.lhs_cols.size(), 1u);
  }
}

// --------------------------------------------------------------- CfdMiner --

TEST(CfdMinerTest, EveryMinedCfdHoldsOnTheInstance) {
  workload::CustomerWorkloadOptions opts;
  opts.num_tuples = 300;
  opts.noise_rate = 0.0;  // mine on clean reference data
  opts.seed = 21;
  auto wl = workload::CustomerGenerator::Generate(opts);

  CfdMinerOptions mopts;
  mopts.max_lhs = 2;
  mopts.min_support = 3;
  CfdMiner miner(&wl.clean, mopts);
  ASSERT_OK_AND_ASSIGN(auto mined, miner.Mine());
  ASSERT_FALSE(mined.empty());

  // Re-verify with the detector: zero violations for every mined CFD.
  detect::NativeDetector detector(&wl.clean, mined);
  ASSERT_OK_AND_ASSIGN(auto table, detector.Detect());
  EXPECT_EQ(table.TotalVio(), 0);
}

TEST(CfdMinerTest, FindsThePapersConditionalDependency) {
  // In customer data, [CNT, ZIP] -> [STR] fails globally (US zips shared by
  // streets) but holds where CNT=UK — exactly the paper's phi2. The miner
  // must surface a variable CFD on (CNT,ZIP) -> STR conditioned on a UK-ish
  // constant.
  workload::CustomerWorkloadOptions opts;
  opts.num_tuples = 400;
  opts.noise_rate = 0.0;
  opts.seed = 22;
  auto wl = workload::CustomerGenerator::Generate(opts);

  CfdMinerOptions mopts;
  mopts.max_lhs = 2;
  mopts.min_support = 3;
  CfdMiner miner(&wl.clean, mopts);
  ASSERT_OK_AND_ASSIGN(auto mined, miner.Mine());

  bool found_phi2_shape = false;
  for (const auto& cfd : mined) {
    if (cfd.rhs_attr() != "STR") continue;
    for (const auto& pt : cfd.tableau()) {
      if (pt.rhs.is_wildcard()) {
        for (const auto& pv : pt.lhs) {
          if (pv.is_constant() && pv.constant() == Value::String("UK")) {
            found_phi2_shape = true;
          }
        }
      }
    }
  }
  EXPECT_TRUE(found_phi2_shape);
}

TEST(CfdMinerTest, GlobalFdBecomesWildcardCfd) {
  Relation rel = semandaq::testing::MakeStringRelation(
      "t", {"A", "B"}, {{"x", "1"}, {"x", "1"}, {"y", "2"}});
  CfdMinerOptions mopts;
  mopts.min_support = 2;
  CfdMiner miner(&rel, mopts);
  ASSERT_OK_AND_ASSIGN(auto mined, miner.Mine());
  bool found_fd = false;
  for (const auto& cfd : mined) {
    if (cfd.IsStandardFd() && cfd.rhs_attr() == "B") found_fd = true;
  }
  EXPECT_TRUE(found_fd);
}

TEST(CfdMinerTest, SupportThresholdFiltersRarePatterns) {
  Relation rel = semandaq::testing::MakeStringRelation(
      "t", {"A", "B", "C"},
      {{"x", "1", "q"}, {"x", "1", "q"}, {"x", "1", "q"}, {"y", "2", "r"}});
  CfdMinerOptions strict;
  strict.min_support = 4;  // nothing has support 4 at constant level
  strict.include_global_fds = false;
  CfdMiner miner(&rel, strict);
  ASSERT_OK_AND_ASSIGN(auto mined, miner.Mine());
  for (const auto& cfd : mined) {
    for (const auto& pt : cfd.tableau()) {
      EXPECT_TRUE(pt.is_pure_fd_row()) << cfd.ToString();
    }
  }
}

TEST(CfdMinerTest, MinedConstantsAreLeftReduced) {
  // C is constant wherever A=x, regardless of B; the miner should emit the
  // one-attribute pattern [A=x] -> [C=q], not [A=x, B=..] -> [C=q].
  Relation rel = semandaq::testing::MakeStringRelation(
      "t", {"A", "B", "C"},
      {{"x", "1", "q"}, {"x", "2", "q"}, {"x", "3", "q"},
       {"x", "1", "q"}, {"x", "2", "q"}, {"x", "3", "q"},
       {"y", "1", "r"}, {"y", "2", "s"}, {"y", "3", "t"}});
  CfdMinerOptions mopts;
  mopts.min_support = 2;
  mopts.include_global_fds = false;
  mopts.mine_variable = false;
  CfdMiner miner(&rel, mopts);
  ASSERT_OK_AND_ASSIGN(auto mined, miner.Mine());
  for (const auto& cfd : mined) {
    if (cfd.rhs_attr() != "C") continue;
    for (const auto& pt : cfd.tableau()) {
      size_t constants = 0;
      bool has_x = false;
      for (const auto& pv : pt.lhs) {
        if (pv.is_constant()) {
          ++constants;
          if (pv.constant() == Value::String("x")) has_x = true;
        }
      }
      if (has_x) {
        EXPECT_EQ(constants, 1u)
            << "left-reducible pattern emitted: " << cfd.ToString();
      }
    }
  }
}

}  // namespace
}  // namespace semandaq::discovery
