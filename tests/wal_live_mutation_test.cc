// The live WAL mutation path (ROADMAP PR 3 follow-up): after SaveRelation
// or OpenRelation, every mutation committed through the relation's
// mutators — DataMonitor update batches, applied repairs, direct
// Insert/Delete/SetCell — must append to the attached WAL sidecar so a
// later OpenRelation replays the relation to its exact live state. The
// gate is mutate -> reopen -> redetect: the reopened relation's detection
// output must equal the live one's, byte for byte.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "core/semandaq.h"
#include "relational/update.h"
#include "test_util.h"
#include "workload/customer_gen.h"

namespace semandaq::core {
namespace {

using relational::Relation;
using relational::Row;
using relational::TupleId;
using relational::Update;
using relational::UpdateBatch;
using relational::Value;

std::string TempPath(const std::string& name) {
  const std::string path = std::string(::testing::TempDir()) + name;
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  return path;
}

Row CustomerRow(const std::string& name) {
  return {Value::String(name),        Value::String("UK"),
          Value::String("Edinburgh"), Value::String("EH2 4SD"),
          Value::String("Mayfield Rd"), Value::String("44"),
          Value::String("131")};
}

void ExpectSameDetection(Semandaq& live, const std::string& live_name,
                         Semandaq& reopened, const std::string& reopened_name) {
  auto a = live.DetectErrors(live_name);
  auto b = reopened.DetectErrors(reopened_name);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->Summary(), b->Summary());
  EXPECT_EQ(a->TotalVio(), b->TotalVio());
  ASSERT_EQ(a->singles().size(), b->singles().size());
  for (size_t i = 0; i < a->singles().size(); ++i) {
    EXPECT_EQ(a->singles()[i].tid, b->singles()[i].tid) << i;
  }
  ASSERT_EQ(a->groups().size(), b->groups().size());
  for (size_t i = 0; i < a->groups().size(); ++i) {
    EXPECT_EQ(a->groups()[i].members, b->groups()[i].members) << i;
  }
}

TEST(WalLiveMutationTest, MonitorUpdatesReachTheSidecar) {
  const std::string path = TempPath("wal_live_monitor.sdq");
  Semandaq sys;
  ASSERT_OK(sys.Connect(semandaq::testing::PaperCustomerRelation()));
  ASSERT_OK(sys.constraints().AddCfdsFromText(semandaq::testing::PaperCfdText()));
  ASSERT_OK_AND_ASSIGN(auto saved, sys.SaveRelation("customer", path));
  (void)saved;

  // The save armed the attachment.
  storage::WalAttachment* wal = sys.AttachedWal("customer");
  ASSERT_NE(wal, nullptr);
  EXPECT_EQ(wal->records_appended(), 0u);

  // Mutate through the monitor — the paper's live-update path. None of
  // these calls know about the WAL; the relation-level observer does.
  ASSERT_OK_AND_ASSIGN(auto monitor, sys.StartMonitor("customer"));
  UpdateBatch batch;
  batch.push_back(Update::Insert(CustomerRow("Zoe")));
  batch.push_back(Update::Insert(CustomerRow("Yan")));
  batch.push_back(Update::DeleteTuple(1));
  batch.push_back(Update::Modify(0, workload::CustomerGenerator::kStr,
                                 Value::String("Crichton St")));
  ASSERT_OK(monitor->OnUpdate(batch).status());
  EXPECT_EQ(wal->records_appended(), 4u);
  ASSERT_OK(wal->status());

  // Reopen the snapshot elsewhere: the sidecar replays the monitor's
  // mutations, so detection output matches the live relation exactly.
  Semandaq other;
  ASSERT_OK_AND_ASSIGN(auto opened, other.OpenRelation("customer2", path));
  EXPECT_EQ(opened.wal_records, 4u);
  ASSERT_OK(other.constraints().AddCfdsFromText(
      "customer2: [CNT=UK, ZIP=_] -> [STR=_]\ncustomer2: [CC=44] -> [CNT=UK]"));
  ExpectSameDetection(sys, "customer", other, "customer2");

  const Relation* live = sys.database().FindRelation("customer");
  const Relation* replayed = other.database().FindRelation("customer2");
  ASSERT_NE(live, nullptr);
  ASSERT_NE(replayed, nullptr);
  EXPECT_EQ(live->size(), replayed->size());
  EXPECT_EQ(live->IdBound(), replayed->IdBound());
  EXPECT_FALSE(replayed->IsLive(1));
  EXPECT_EQ(replayed->cell(0, workload::CustomerGenerator::kStr),
            Value::String("Crichton St"));

  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

TEST(WalLiveMutationTest, ApplyRepairJournalsSetCells) {
  const std::string path = TempPath("wal_live_repair.sdq");
  Semandaq sys;
  ASSERT_OK(sys.Connect(semandaq::testing::PaperCustomerRelation()));
  ASSERT_OK(sys.constraints().AddCfdsFromText(semandaq::testing::PaperCfdText()));
  ASSERT_OK_AND_ASSIGN(auto saved, sys.SaveRelation("customer", path));
  (void)saved;

  ASSERT_OK_AND_ASSIGN(auto repair, sys.Clean("customer"));
  ASSERT_FALSE(repair.changes.empty());
  ASSERT_OK(sys.ApplyRepair("customer", repair));
  storage::WalAttachment* wal = sys.AttachedWal("customer");
  ASSERT_NE(wal, nullptr);
  EXPECT_EQ(wal->records_appended(), repair.changes.size());

  Semandaq other;
  ASSERT_OK_AND_ASSIGN(auto opened, other.OpenRelation("cleaned", path));
  EXPECT_EQ(opened.wal_records, repair.changes.size());
  ASSERT_OK(other.constraints().AddCfdsFromText(
      "cleaned: [CNT=UK, ZIP=_] -> [STR=_]\ncleaned: [CC=44] -> [CNT=UK]"));
  ExpectSameDetection(sys, "customer", other, "cleaned");

  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

TEST(WalLiveMutationTest, OpenedRelationKeepsJournaling) {
  // Open -> mutate -> reopen: the attachment armed by OpenRelation appends
  // after the replayed tail, so chained reopen cycles stay lossless.
  const std::string path = TempPath("wal_live_chain.sdq");
  {
    Semandaq sys;
    ASSERT_OK(sys.Connect(semandaq::testing::PaperCustomerRelation()));
    ASSERT_OK_AND_ASSIGN(auto saved, sys.SaveRelation("customer", path));
    (void)saved;
    // Mutate AFTER save via direct relation access (any mutator counts).
    Relation* rel = sys.database().FindMutableRelation("customer");
    ASSERT_NE(rel, nullptr);
    ASSERT_OK(rel->Insert(CustomerRow("Pat")).status());
  }
  size_t first_gen_records = 0;
  {
    Semandaq sys;
    ASSERT_OK_AND_ASSIGN(auto opened, sys.OpenRelation("customer", path));
    first_gen_records = opened.wal_records;
    EXPECT_EQ(first_gen_records, 1u);
    Relation* rel = sys.database().FindMutableRelation("customer");
    ASSERT_NE(rel, nullptr);
    ASSERT_OK(rel->Delete(2));
    storage::WalAttachment* wal = sys.AttachedWal("customer");
    ASSERT_NE(wal, nullptr);
    EXPECT_EQ(wal->records_appended(), 1u);
  }
  {
    Semandaq sys;
    ASSERT_OK_AND_ASSIGN(auto opened, sys.OpenRelation("customer", path));
    EXPECT_EQ(opened.wal_records, 2u);  // insert + delete, both replayed
    const Relation* rel = sys.database().FindRelation("customer");
    ASSERT_NE(rel, nullptr);
    EXPECT_FALSE(rel->IsLive(2));
    EXPECT_EQ(rel->IdBound(), 8);  // 7 paper tuples + Pat
  }
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

TEST(WalLiveMutationTest, UnsavedRelationHasNoAttachment) {
  Semandaq sys;
  ASSERT_OK(sys.Connect(semandaq::testing::PaperCustomerRelation()));
  EXPECT_EQ(sys.AttachedWal("customer"), nullptr);
  EXPECT_EQ(sys.AttachedWal("nope"), nullptr);
}

}  // namespace
}  // namespace semandaq::core
