#include <gtest/gtest.h>

#include "cfd/cfd_parser.h"
#include "detect/native_detector.h"
#include "repair/batch_repair.h"
#include "repair/cost_model.h"
#include "repair/equivalence.h"
#include "repair/inc_repair.h"
#include "repair/repair_review.h"
#include "test_util.h"

namespace semandaq::repair {
namespace {

using relational::Relation;
using relational::Schema;
using relational::TupleId;
using relational::Update;
using relational::Value;

std::vector<cfd::Cfd> Parse(const std::string& text) {
  auto r = cfd::ParseCfdSet(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(*r) : std::vector<cfd::Cfd>{};
}

size_t CountViolations(const Relation& rel, const std::string& cfd_text) {
  detect::NativeDetector detector(&rel, Parse(cfd_text));
  auto table = detector.Detect();
  EXPECT_TRUE(table.ok());
  return table.ok() ? static_cast<size_t>(table->TotalVio()) : 999999;
}

// -------------------------------------------------------------- CostModel --

TEST(CostModelTest, EqualValuesAreFree) {
  CostModel cm(Schema::AllStrings({"A"}));
  EXPECT_DOUBLE_EQ(cm.CellChangeCost(0, Value::String("x"), Value::String("x")), 0.0);
}

TEST(CostModelTest, StringCostIsNormalizedEditDistance) {
  CostModel cm(Schema::AllStrings({"A"}));
  const double near = cm.CellChangeCost(0, Value::String("London"),
                                        Value::String("Londom"));
  const double far = cm.CellChangeCost(0, Value::String("London"),
                                       Value::String("Edinburgh"));
  EXPECT_LT(near, far);
  EXPECT_LE(far, 1.0);
}

TEST(CostModelTest, WeightsScaleCost) {
  CostModelOptions opts;
  opts.attr_weights = {2.0, 0.5};
  CostModel cm(Schema::AllStrings({"A", "B"}), opts);
  const double a = cm.CellChangeCost(0, Value::String("x"), Value::String("y"));
  const double b = cm.CellChangeCost(1, Value::String("x"), Value::String("y"));
  EXPECT_DOUBLE_EQ(a, 4 * b);
}

TEST(CostModelTest, NullEscapeIsSurcharged) {
  CostModel cm(Schema::AllStrings({"A"}));
  const double to_null = cm.CellChangeCost(0, Value::String("x"), Value::Null());
  const double to_other = cm.CellChangeCost(0, Value::String("x"), Value::String("completely_different"));
  EXPECT_GT(to_null, to_other - 1e-9);
}

TEST(CostModelTest, RowDistanceSumsCells) {
  CostModel cm(Schema::AllStrings({"A", "B"}));
  const double d = cm.RowDistance({Value::String("ab"), Value::String("x")},
                                  {Value::String("ab"), Value::String("y")});
  EXPECT_GT(d, 0);
  EXPECT_LE(d, 1.0);
}

// ----------------------------------------------------- EquivalenceClasses --

TEST(EquivalenceTest, FreshCellsAreSingletons) {
  EquivalenceClasses eq;
  CellId a{1, 0};
  EXPECT_EQ(eq.Find(a), a);
  EXPECT_EQ(eq.Members(a).size(), 1u);
  EXPECT_FALSE(eq.Target(a).has_value());
}

TEST(EquivalenceTest, UnionMergesMembers) {
  EquivalenceClasses eq;
  CellId a{1, 0};
  CellId b{2, 0};
  CellId c{3, 0};
  eq.Union(a, b);
  eq.Union(b, c);
  EXPECT_EQ(eq.Find(a), eq.Find(c));
  EXPECT_EQ(eq.Members(b).size(), 3u);
  EXPECT_EQ(eq.NumMergedClasses(), 1u);
}

TEST(EquivalenceTest, TargetsFollowMerges) {
  EquivalenceClasses eq;
  CellId a{1, 0};
  CellId b{2, 0};
  eq.SetTarget(a, Value::String("v"));
  eq.Union(a, b);
  ASSERT_TRUE(eq.Target(b).has_value());
  EXPECT_EQ(*eq.Target(b), Value::String("v"));
}

TEST(EquivalenceTest, UnionIsIdempotent) {
  EquivalenceClasses eq;
  CellId a{1, 0};
  CellId b{2, 0};
  eq.Union(a, b);
  eq.Union(a, b);
  EXPECT_EQ(eq.Members(a).size(), 2u);
}

// ------------------------------------------------------------ BatchRepair --

TEST(BatchRepairTest, FixesConstantViolationToRhsConstant) {
  // Eve: CC=44 but CNT=US. The cheapest fix is CNT := UK.
  Relation rel = semandaq::testing::PaperCustomerRelation();
  CostModel cm(rel.schema());
  BatchRepair repair(&rel, Parse(semandaq::testing::PaperCfdText()), cm);
  ASSERT_OK_AND_ASSIGN(RepairResult result, repair.Run());

  EXPECT_EQ(result.remaining_violations, 0u);
  EXPECT_EQ(CountViolations(result.repaired, semandaq::testing::PaperCfdText()), 0u);
  // Original relation untouched.
  EXPECT_EQ(rel.cell(6, 1).AsString(), "US");
  EXPECT_GT(result.changes.size(), 0u);
  EXPECT_GT(result.total_cost, 0.0);
}

TEST(BatchRepairTest, GroupRepairPicksMajorityValue) {
  // Streets {Mayfield Rd, Crichton St, Mayfield Rd}: majority is cheapest.
  Relation rel = semandaq::testing::PaperCustomerRelation();
  CostModel cm(rel.schema());
  BatchRepair repair(&rel, Parse(semandaq::testing::PaperCfdText()), cm);
  ASSERT_OK_AND_ASSIGN(RepairResult result, repair.Run());
  EXPECT_EQ(result.repaired.cell(1, 4).AsString(), "Mayfield Rd");
  EXPECT_EQ(result.repaired.cell(0, 4).AsString(), "Mayfield Rd");
}

TEST(BatchRepairTest, CleanInstanceIsNoOp) {
  Relation rel = semandaq::testing::MakeStringRelation(
      "customer", {"NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"},
      {{"A", "UK", "Edi", "EH1", "HighSt", "44", "131"}});
  CostModel cm(rel.schema());
  BatchRepair repair(&rel, Parse(semandaq::testing::PaperCfdText()), cm);
  ASSERT_OK_AND_ASSIGN(RepairResult result, repair.Run());
  EXPECT_TRUE(result.changes.empty());
  EXPECT_DOUBLE_EQ(result.total_cost, 0.0);
  EXPECT_EQ(result.iterations, 0);
}

TEST(BatchRepairTest, RecordsRankedAlternatives) {
  Relation rel = semandaq::testing::PaperCustomerRelation();
  CostModel cm(rel.schema());
  BatchRepair repair(&rel, Parse(semandaq::testing::PaperCfdText()), cm);
  ASSERT_OK_AND_ASSIGN(RepairResult result, repair.Run());
  bool found_alternatives = false;
  for (const CellChange& ch : result.changes) {
    if (ch.alternatives.size() >= 2) {
      found_alternatives = true;
      // Ranked ascending by cost.
      for (size_t i = 1; i < ch.alternatives.size(); ++i) {
        EXPECT_LE(ch.alternatives[i - 1].second, ch.alternatives[i].second);
      }
    }
  }
  EXPECT_TRUE(found_alternatives);
}

TEST(BatchRepairTest, AttributeWeightsSteerRepairs) {
  // A=1 pairs with B in {x, y}; with B heavily weighted, the cleanser should
  // prefer editing A (the LHS escape) over rewriting B values.
  Relation rel = semandaq::testing::MakeStringRelation(
      "t", {"A", "B"}, {{"1", "x"}, {"1", "y"}});
  CostModelOptions opts;
  opts.attr_weights = {0.01, 100.0};
  CostModel cm(rel.schema(), opts);
  BatchRepair repair(&rel, Parse("t: [A] -> [B]"), cm);
  ASSERT_OK_AND_ASSIGN(RepairResult result, repair.Run());
  EXPECT_EQ(CountViolations(result.repaired, "t: [A] -> [B]"), 0u);
  // B cells untouched.
  EXPECT_EQ(result.repaired.cell(0, 1).AsString(), "x");
  EXPECT_EQ(result.repaired.cell(1, 1).AsString(), "y");
}

TEST(BatchRepairTest, UnsatisfiableConstantsEscapeToNull) {
  // Two wildcard-guarded constant CFDs force B to be both 1 and 2: the only
  // way out is the NULL escape, and the result is violation-free because
  // NULL cells are unknown-not-wrong.
  Relation rel = semandaq::testing::MakeStringRelation("t", {"A", "B"},
                                                       {{"a", "1"}});
  CostModel cm(rel.schema());
  BatchRepair repair(&rel, Parse("t: [A=_] -> [B=1]\nt: [A=_] -> [B=2]"), cm);
  ASSERT_OK_AND_ASSIGN(RepairResult result, repair.Run());
  EXPECT_EQ(result.remaining_violations, 0u);
  EXPECT_GT(result.null_escapes, 0u);
}

TEST(BatchRepairTest, RestrictedModeOnlyTouchesMutableTuples) {
  Relation rel = semandaq::testing::MakeStringRelation(
      "t", {"A", "B"}, {{"1", "x"}, {"1", "x"}, {"1", "y"}});
  CostModel cm(rel.schema());
  RepairOptions opts;
  opts.restrict_to_mutable = true;
  opts.mutable_tids = {2};
  BatchRepair repair(&rel, Parse("t: [A] -> [B]"), cm, opts);
  ASSERT_OK_AND_ASSIGN(RepairResult result, repair.Run());
  EXPECT_EQ(CountViolations(result.repaired, "t: [A] -> [B]"), 0u);
  // Frozen tuples keep their values; tuple 2 adopts them.
  EXPECT_EQ(result.repaired.cell(0, 1).AsString(), "x");
  EXPECT_EQ(result.repaired.cell(1, 1).AsString(), "x");
  EXPECT_EQ(result.repaired.cell(2, 1).AsString(), "x");
}

TEST(BatchRepairTest, RestrictedModeWithIrreconcilableFrozenValues) {
  // Frozen tuples disagree: the mutable tuple is moved out of the group via
  // the LHS NULL escape and the frozen conflict is reported as remaining.
  Relation rel = semandaq::testing::MakeStringRelation(
      "t", {"A", "B"}, {{"1", "x"}, {"1", "y"}, {"1", "z"}});
  CostModel cm(rel.schema());
  RepairOptions opts;
  opts.restrict_to_mutable = true;
  opts.mutable_tids = {2};
  BatchRepair repair(&rel, Parse("t: [A] -> [B]"), cm, opts);
  ASSERT_OK_AND_ASSIGN(RepairResult result, repair.Run());
  // Tuple 2 no longer participates…
  EXPECT_TRUE(result.repaired.cell(2, 0).is_null() ||
              result.repaired.cell(2, 1).is_null());
  // …but the frozen pair still violates: honestly reported.
  EXPECT_GT(result.remaining_violations, 0u);
}

// -------------------------------------------------------------- IncRepair --

TEST(IncRepairTest, RepairsOnlyTheDelta) {
  // Clean base: two tuples agreeing on street.
  Relation rel = semandaq::testing::MakeStringRelation(
      "customer", {"NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"},
      {{"A", "UK", "Edi", "EH1", "HighSt", "44", "131"},
       {"B", "UK", "Edi", "EH1", "HighSt", "44", "131"}});
  auto cfds = Parse(semandaq::testing::PaperCfdText());
  CostModel cm(rel.schema());
  IncRepair inc(&rel, cfds, cm);

  // Dirty insert: wrong street for the same UK zip.
  relational::UpdateBatch batch = {Update::Insert(
      {Value::String("C"), Value::String("UK"), Value::String("Edi"),
       Value::String("EH1"), Value::String("WrongSt"), Value::String("44"),
       Value::String("131")})};
  ASSERT_OK_AND_ASSIGN(IncRepairResult result, inc.Run(batch));

  EXPECT_EQ(result.repair.remaining_violations, 0u);
  // The new tuple adopted the established street; base data untouched.
  EXPECT_EQ(result.repair.repaired.cell(2, 4).AsString(), "HighSt");
  EXPECT_EQ(result.repair.repaired.cell(0, 4).AsString(), "HighSt");
  EXPECT_EQ(result.delta_tids, (std::vector<TupleId>{2}));
}

TEST(IncRepairTest, ModifiedTuplesAreMutable) {
  Relation rel = semandaq::testing::MakeStringRelation(
      "customer", {"NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"},
      {{"A", "UK", "Edi", "EH1", "HighSt", "44", "131"},
       {"B", "UK", "Edi", "EH1", "HighSt", "44", "131"}});
  auto cfds = Parse(semandaq::testing::PaperCfdText());
  CostModel cm(rel.schema());
  IncRepair inc(&rel, cfds, cm);
  relational::UpdateBatch batch = {Update::Modify(1, 4, Value::String("Oops"))};
  ASSERT_OK_AND_ASSIGN(IncRepairResult result, inc.Run(batch));
  EXPECT_EQ(result.repair.remaining_violations, 0u);
  EXPECT_EQ(result.repair.repaired.cell(1, 4).AsString(), "HighSt");
}

// ----------------------------------------------------------- RepairReview --

TEST(RepairReviewTest, DiffHighlightsChanges) {
  Relation rel = semandaq::testing::PaperCustomerRelation();
  CostModel cm(rel.schema());
  auto cfds = Parse(semandaq::testing::PaperCfdText());
  BatchRepair repair(&rel, cfds, cm);
  ASSERT_OK_AND_ASSIGN(RepairResult result, repair.Run());

  RepairReview review(&rel, std::move(result), cfds);
  ASSERT_OK(review.Start());
  const std::string diff = review.RenderDiff();
  EXPECT_NE(diff.find("->"), std::string::npos);
  EXPECT_NE(diff.find("modified cell(s)"), std::string::npos);
}

TEST(RepairReviewTest, OverrideTriggersIncrementalDetection) {
  Relation rel = semandaq::testing::PaperCustomerRelation();
  CostModel cm(rel.schema());
  auto cfds = Parse(semandaq::testing::PaperCfdText());
  BatchRepair repair(&rel, cfds, cm);
  ASSERT_OK_AND_ASSIGN(RepairResult result, repair.Run());

  RepairReview review(&rel, std::move(result), cfds);
  ASSERT_OK(review.Start());
  // Override Rick's repaired street back to a conflicting value: the
  // incremental detector must flag the EH2 4SD group again.
  ASSERT_OK_AND_ASSIGN(auto fresh,
                       review.OverrideCell(1, 4, Value::String("Crichton St")));
  EXPECT_FALSE(fresh.empty());
  // The change log follows the override.
  const CellChange* ch = review.FindChange(1, 4);
  ASSERT_NE(ch, nullptr);
  EXPECT_EQ(ch->repaired, Value::String("Crichton St"));
}

TEST(RepairReviewTest, SafeOverrideReturnsNoConflicts) {
  Relation rel = semandaq::testing::PaperCustomerRelation();
  CostModel cm(rel.schema());
  auto cfds = Parse(semandaq::testing::PaperCfdText());
  BatchRepair repair(&rel, cfds, cm);
  ASSERT_OK_AND_ASSIGN(RepairResult result, repair.Run());
  RepairReview review(&rel, std::move(result), cfds);
  ASSERT_OK(review.Start());
  // Renaming a customer violates nothing.
  ASSERT_OK_AND_ASSIGN(auto fresh, review.OverrideCell(0, 0, Value::String("Mike2")));
  EXPECT_TRUE(fresh.empty());
}

TEST(RepairReviewTest, RequiresStart) {
  Relation rel = semandaq::testing::PaperCustomerRelation();
  RepairResult empty_result;
  empty_result.repaired = rel.Clone();
  RepairReview review(&rel, std::move(empty_result), {});
  EXPECT_FALSE(review.OverrideCell(0, 0, Value::String("x")).ok());
}

}  // namespace
}  // namespace semandaq::repair
