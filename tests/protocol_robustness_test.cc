// Protocol robustness (server/protocol): the framing layer against every
// malformed input a hostile or broken peer can produce — truncated length
// prefixes, oversized lengths, mid-frame EOFs, zero-length frames, garbage
// status bytes — plus the deadline behavior that keeps a stalled peer from
// wedging a thread. Everything runs over socketpairs: real fds, no network.

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/status.h"
#include "server/protocol.h"
#include "test_util.h"

namespace semandaq::server {
namespace {

using common::StatusCode;

/// A connected fd pair; closes whatever is still open on destruction.
struct SocketPair {
  SocketPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    CloseA();
    CloseB();
  }
  void CloseA() {
    if (a >= 0) ::close(a);
    a = -1;
  }
  void CloseB() {
    if (b >= 0) ::close(b);
    b = -1;
  }
  int a = -1;
  int b = -1;
};

void SendRaw(int fd, const void* data, size_t n) {
  ASSERT_EQ(::send(fd, data, n, MSG_NOSIGNAL), static_cast<ssize_t>(n));
}

TEST(ProtocolRobustnessTest, WellFormedFramesRoundTrip) {
  SocketPair pair;
  ASSERT_OK(WriteFrame(pair.a, "detect customer"));
  std::string payload;
  ASSERT_OK_AND_ASSIGN(bool got, ReadFrame(pair.b, &payload));
  EXPECT_TRUE(got);
  EXPECT_EQ(payload, "detect customer");
}

TEST(ProtocolRobustnessTest, ZeroLengthFrameIsLegal) {
  SocketPair pair;
  ASSERT_OK(WriteFrame(pair.a, ""));
  std::string payload = "stale";
  ASSERT_OK_AND_ASSIGN(bool got, ReadFrame(pair.b, &payload));
  EXPECT_TRUE(got);
  EXPECT_EQ(payload, "");
}

TEST(ProtocolRobustnessTest, CleanEofAtFrameBoundaryIsNotAnError) {
  SocketPair pair;
  pair.CloseA();
  std::string payload;
  ASSERT_OK_AND_ASSIGN(bool got, ReadFrame(pair.b, &payload));
  EXPECT_FALSE(got);
}

TEST(ProtocolRobustnessTest, TruncatedLengthPrefixIsATornFrame) {
  SocketPair pair;
  const char partial[2] = {0x10, 0x00};  // 2 of the 4 prefix bytes
  SendRaw(pair.a, partial, sizeof partial);
  pair.CloseA();
  std::string payload;
  auto got = ReadFrame(pair.b, &payload);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kIoError);
  EXPECT_NE(got.status().message().find("mid-frame"), std::string::npos);
}

TEST(ProtocolRobustnessTest, OversizedLengthPrefixIsRejectedNotAllocated) {
  SocketPair pair;
  // A hostile length just past the cap must be refused before any body
  // read — and long before a 4 GiB allocation.
  const uint32_t huge = kMaxFrameBytes + 1;
  SendRaw(pair.a, &huge, sizeof huge);
  std::string payload;
  auto got = ReadFrame(pair.b, &payload);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kIoError);
  EXPECT_NE(got.status().message().find("oversized"), std::string::npos);

  const uint32_t worst = 0xFFFFFFFFu;
  SendRaw(pair.a, &worst, sizeof worst);
  EXPECT_FALSE(ReadFrame(pair.b, &payload).ok());
}

TEST(ProtocolRobustnessTest, EofMidBodyIsATornFrame) {
  SocketPair pair;
  const uint32_t len = 10;
  SendRaw(pair.a, &len, sizeof len);
  SendRaw(pair.a, "1234", 4);  // 4 of the promised 10 bytes
  pair.CloseA();
  std::string payload;
  auto got = ReadFrame(pair.b, &payload);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kIoError);
  EXPECT_NE(got.status().message().find("mid-frame"), std::string::npos);
}

TEST(ProtocolRobustnessTest, GarbageStatusByteSweep) {
  // Status bytes 0..4 (ok/error/cancelled/deadline/busy) are the whole
  // alphabet; everything else is a protocol error, not a crash or a
  // silently-wrong response.
  ASSERT_OK_AND_ASSIGN(WireResponse ok, DecodeResponse(std::string("\0", 1)));
  EXPECT_TRUE(ok.ok);
  ASSERT_OK_AND_ASSIGN(WireResponse err, DecodeResponse(std::string("\1x", 2)));
  EXPECT_FALSE(err.ok);
  EXPECT_EQ(err.text, "x");
  ASSERT_OK_AND_ASSIGN(WireResponse cancelled,
                       DecodeResponse(std::string("\2c", 2)));
  EXPECT_FALSE(cancelled.ok);
  EXPECT_EQ(cancelled.status, WireStatus::kCancelled);
  ASSERT_OK_AND_ASSIGN(WireResponse late, DecodeResponse(std::string("\3d", 2)));
  EXPECT_FALSE(late.ok);
  EXPECT_EQ(late.status, WireStatus::kDeadlineExceeded);
  // Busy carries a u32-LE retry hint between the status byte and the text.
  ASSERT_OK_AND_ASSIGN(WireResponse busy,
                       DecodeResponse(EncodeBusyResponse(250, "b")));
  EXPECT_FALSE(busy.ok);
  EXPECT_EQ(busy.status, WireStatus::kBusy);
  EXPECT_EQ(busy.retry_after_ms, 250u);
  EXPECT_EQ(busy.text, "b");
  EXPECT_FALSE(DecodeResponse(std::string("\4xy", 3)).ok());  // truncated hint

  EXPECT_FALSE(DecodeResponse("").ok());  // no status byte at all
  for (int byte = 5; byte < 256; byte += 61) {
    std::string payload(1, static_cast<char>(byte));
    payload += "body";
    EXPECT_FALSE(DecodeResponse(payload).ok()) << "status byte " << byte;
  }
  EXPECT_FALSE(DecodeResponse(std::string(1, '\xff')).ok());
}

TEST(ProtocolRobustnessTest, RequestControlFramesRoundTrip) {
  // Plain text stays a bare command (commands never start with NUL).
  ASSERT_OK_AND_ASSIGN(WireRequest plain, DecodeRequest("detect customer"));
  EXPECT_FALSE(plain.cancel);
  EXPECT_EQ(plain.deadline_ms, 0u);
  EXPECT_EQ(plain.command, "detect customer");

  ASSERT_OK_AND_ASSIGN(WireRequest dl,
                       DecodeRequest(EncodeDeadlineRequest(1500, "mine r")));
  EXPECT_FALSE(dl.cancel);
  EXPECT_EQ(dl.deadline_ms, 1500u);
  EXPECT_EQ(dl.command, "mine r");

  ASSERT_OK_AND_ASSIGN(WireRequest cancel, DecodeRequest(EncodeCancelRequest()));
  EXPECT_TRUE(cancel.cancel);

  // Torn/unknown control frames are protocol errors, not misread commands.
  EXPECT_FALSE(DecodeRequest(std::string("\0", 1)).ok());
  EXPECT_FALSE(DecodeRequest(std::string("\0\1ab", 4)).ok());   // short deadline
  EXPECT_FALSE(DecodeRequest(std::string("\0\77", 2)).ok());    // unknown kind
}

TEST(ProtocolRobustnessTest, SilentPeerTripsTheReadDeadline) {
  SocketPair pair;
  std::string payload;
  auto got = ReadFrame(pair.b, &payload, /*deadline_ms=*/50);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(ProtocolRobustnessTest, MidFrameStallTripsTheReadDeadline) {
  SocketPair pair;
  const uint32_t len = 100;
  SendRaw(pair.a, &len, sizeof len);
  SendRaw(pair.a, "partial", 7);  // then stall, fd still open
  std::string payload;
  auto got = ReadFrame(pair.b, &payload, /*deadline_ms=*/50);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(ProtocolRobustnessTest, UnreadPeerTripsTheWriteDeadline) {
  SocketPair pair;
  // Shrink both buffers so a modest frame overfills them; the peer never
  // reads, so the writer must give up at its deadline instead of blocking
  // forever.
  const int small = 4096;
  ASSERT_EQ(::setsockopt(pair.a, SOL_SOCKET, SO_SNDBUF, &small, sizeof small),
            0);
  ASSERT_EQ(::setsockopt(pair.b, SOL_SOCKET, SO_RCVBUF, &small, sizeof small),
            0);
  const std::string big(1 << 20, 'x');
  const auto wrote = WriteFrame(pair.a, big, /*deadline_ms=*/50);
  ASSERT_FALSE(wrote.ok());
  EXPECT_EQ(wrote.code(), StatusCode::kDeadlineExceeded);
}

TEST(ProtocolRobustnessTest, DeadlineCoversTheWholeFrameNotEachByte) {
  // A peer dribbling bytes slower than the total budget still times out:
  // the deadline is absolute, so progress does not reset it.
  SocketPair pair;
  std::thread dribbler([&] {
    const uint32_t len = 1000;
    ::send(pair.a, &len, sizeof len, MSG_NOSIGNAL);
    for (int i = 0; i < 50; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      if (::send(pair.a, "x", 1, MSG_NOSIGNAL | MSG_DONTWAIT) <= 0) break;
    }
  });
  std::string payload;
  const auto start = std::chrono::steady_clock::now();
  auto got = ReadFrame(pair.b, &payload, /*deadline_ms=*/100);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(elapsed, 5000);  // gave up near the budget, not after the dribble
  pair.CloseB();
  dribbler.join();
}

TEST(ProtocolRobustnessTest, PeerClosedWriteIsAnIoErrorNotASignal) {
  SocketPair pair;
  pair.CloseB();
  // MSG_NOSIGNAL discipline: writing into a closed peer must surface as a
  // status, not kill the process with SIGPIPE.
  const auto wrote = WriteFrame(pair.a, "hello");
  EXPECT_FALSE(wrote.ok());
  EXPECT_EQ(wrote.code(), StatusCode::kIoError);
}

TEST(ProtocolRobustnessTest, UnarmedDeadlineStillBlocksUntilData) {
  SocketPair pair;
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_OK(WriteFrame(pair.a, "late"));
  });
  std::string payload;
  ASSERT_OK_AND_ASSIGN(bool got, ReadFrame(pair.b, &payload, /*deadline_ms=*/0));
  EXPECT_TRUE(got);
  EXPECT_EQ(payload, "late");
  sender.join();
}

}  // namespace
}  // namespace semandaq::server
