#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"
#include "test_util.h"

namespace semandaq::common {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unsatisfiable("x").code(), StatusCode::kUnsatisfiable);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.ValueOr(3), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(3), 3);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  SEMANDAQ_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  auto inner_fail = Quarter(6);  // 6/2 = 3 is odd
  EXPECT_FALSE(inner_fail.ok());
}

// ----------------------------------------------------------- StringUtil --

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, CaseConversions) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
  EXPECT_TRUE(EqualsIgnoreCase("ZIP", "zip"));
  EXPECT_FALSE(EqualsIgnoreCase("ZIP", "zipp"));
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("__cfd_tableau_0", "__cfd_"));
  EXPECT_FALSE(StartsWith("cfd", "__cfd_"));
  EXPECT_TRUE(EndsWith("report.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", "report.csv"));
}

TEST(StringUtilTest, QuoteSqlStringEscapesQuotes) {
  EXPECT_EQ(QuoteSqlString("Abe's"), "'Abe''s'");
  EXPECT_EQ(QuoteSqlString(""), "''");
}

TEST(StringUtilTest, DamerauLevenshteinBasics) {
  EXPECT_EQ(DamerauLevenshtein("", ""), 0u);
  EXPECT_EQ(DamerauLevenshtein("abc", "abc"), 0u);
  EXPECT_EQ(DamerauLevenshtein("abc", ""), 3u);
  EXPECT_EQ(DamerauLevenshtein("kitten", "sitting"), 3u);
  // Transposition counts as one edit (the Damerau extension).
  EXPECT_EQ(DamerauLevenshtein("ab", "ba"), 1u);
  EXPECT_EQ(DamerauLevenshtein("Edinburgh", "Edinbrugh"), 1u);
}

TEST(StringUtilTest, NormalizedEditDistanceRange) {
  EXPECT_DOUBLE_EQ(NormalizedEditDistance("", ""), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedEditDistance("abc", "abc"), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedEditDistance("abc", "xyz"), 1.0);
  const double d = NormalizedEditDistance("London", "Londom");
  EXPECT_GT(d, 0.0);
  EXPECT_LT(d, 0.5);
}

TEST(StringUtilTest, LikeMatch) {
  EXPECT_TRUE(LikeMatch("Edinburgh", "Edin%"));
  EXPECT_TRUE(LikeMatch("Edinburgh", "%burgh"));
  EXPECT_TRUE(LikeMatch("Edinburgh", "E_inburgh"));
  EXPECT_TRUE(LikeMatch("abc", "%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("abc", "_"));
  EXPECT_FALSE(LikeMatch("abc", "abd"));
  EXPECT_TRUE(LikeMatch("a%c", "a%c"));  // '%' in text is matched by '%' run
  EXPECT_TRUE(LikeMatch("aXXXb", "a%b"));
}

TEST(StringUtilTest, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("99999999999999999999999", &v));  // overflow
}

TEST(StringUtilTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("2.5", &v));
  EXPECT_DOUBLE_EQ(v, 2.5);
  EXPECT_TRUE(ParseDouble("-1e3", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("1.2.3", &v));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(2.0), "2");
  EXPECT_EQ(FormatDouble(2.5), "2.5");
  EXPECT_EQ(FormatDouble(0.125), "0.125");
}

// ------------------------------------------------------------------ CSV --

TEST(CsvTest, ParseSimpleLine) {
  ASSERT_OK_AND_ASSIGN(auto fields, CsvParser::ParseLine("a,b,c"));
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "b");
}

TEST(CsvTest, ParseQuotedFields) {
  ASSERT_OK_AND_ASSIGN(auto fields, CsvParser::ParseLine(R"(x,"a,b","say ""hi""")"));
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "a,b");
  EXPECT_EQ(fields[2], "say \"hi\"");
}

TEST(CsvTest, UnterminatedQuoteFails) {
  auto r = CsvParser::ParseLine("a,\"oops");
  EXPECT_FALSE(r.ok());
}

TEST(CsvTest, DocumentSkipsBlankLinesAndHandlesCrlf) {
  ASSERT_OK_AND_ASSIGN(auto rows,
                       CsvParser::ParseDocument("a,b\r\n\r\n1,2\n\n3,4\n"));
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0], "a");
  EXPECT_EQ(rows[2][1], "4");
}

TEST(CsvTest, QuotedNewlineInsideField) {
  ASSERT_OK_AND_ASSIGN(auto rows, CsvParser::ParseDocument("h\n\"two\nlines\"\n"));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][0], "two\nlines");
}

TEST(CsvTest, FormatRoundTrip) {
  std::vector<std::string> fields = {"plain", "with,comma", "with\"quote", "nl\nx"};
  const std::string line = CsvFormatLine(fields);
  ASSERT_OK_AND_ASSIGN(auto parsed, CsvParser::ParseLine(line));
  EXPECT_EQ(parsed, fields);
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/semandaq_csv_test.txt";
  ASSERT_OK(WriteStringToFile(path, "hello\nworld"));
  ASSERT_OK_AND_ASSIGN(std::string content, ReadFileToString(path));
  EXPECT_EQ(content, "hello\nworld");
}

TEST(CsvTest, MissingFileFails) {
  auto r = ReadFileToString("/nonexistent/semandaq/file.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

// --------------------------------------------------------------- Random --

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBool(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(13);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ZipfTest, SkewPrefersLowRanks) {
  Rng rng(17);
  ZipfGenerator zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Next(&rng)];
  EXPECT_GT(counts[0], counts[50]);
  EXPECT_GT(counts[0], 20000 / 100);  // way above uniform share
}

TEST(ZipfTest, ThetaZeroIsRoughlyUniform) {
  Rng rng(19);
  ZipfGenerator zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Next(&rng)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 400);
}

}  // namespace
}  // namespace semandaq::common
