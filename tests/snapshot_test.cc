// The persistent columnar store (src/storage): snapshot round-trips must be
// lossless — same schema, same TupleIds (tombstones included), byte-identical
// code columns — and detection over a loaded snapshot must be *exactly* the
// detection over the original in-memory relation. The corruption paths
// (manifest, sections, truncation, WAL) must come back as IoError, never as
// quietly wrong data.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cfd/cfd_parser.h"
#include "common/csv.h"
#include "core/semandaq.h"
#include "detect/native_detector.h"
#include "discovery/cfd_miner.h"
#include "relational/encoded_relation.h"
#include "storage/format.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "test_util.h"
#include "workload/customer_gen.h"
#include "workload/hospital_gen.h"

namespace semandaq::storage {
namespace {

using detect::NativeDetector;
using detect::SingleViolation;
using detect::ViolationGroup;
using detect::ViolationTable;
using relational::Code;
using relational::EncodedRelation;
using relational::Relation;
using relational::Row;
using relational::Schema;
using relational::TupleId;
using relational::Value;

std::vector<cfd::Cfd> Parse(const std::string& text) {
  auto r = cfd::ParseCfdSet(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(*r) : std::vector<cfd::Cfd>{};
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Exact (order-sensitive) equality of two violation tables.
void ExpectTablesEqual(const ViolationTable& a, const ViolationTable& b) {
  EXPECT_EQ(a.TotalVio(), b.TotalVio());
  EXPECT_EQ(a.NumViolatingTuples(), b.NumViolatingTuples());
  ASSERT_EQ(a.singles().size(), b.singles().size());
  for (size_t i = 0; i < a.singles().size(); ++i) {
    EXPECT_EQ(a.singles()[i].tid, b.singles()[i].tid) << "single " << i;
    EXPECT_EQ(a.singles()[i].cfd_index, b.singles()[i].cfd_index);
    EXPECT_EQ(a.singles()[i].pattern_index, b.singles()[i].pattern_index);
  }
  ASSERT_EQ(a.groups().size(), b.groups().size());
  for (size_t i = 0; i < a.groups().size(); ++i) {
    const ViolationGroup& ga = a.groups()[i];
    const ViolationGroup& gb = b.groups()[i];
    EXPECT_EQ(ga.fd_group, gb.fd_group) << "group " << i;
    EXPECT_EQ(ga.cfd_index, gb.cfd_index) << "group " << i;
    ASSERT_EQ(ga.lhs_key.size(), gb.lhs_key.size());
    for (size_t k = 0; k < ga.lhs_key.size(); ++k) {
      EXPECT_EQ(ga.lhs_key[k], gb.lhs_key[k]) << "group " << i << " key " << k;
    }
    ASSERT_EQ(ga.members.size(), gb.members.size()) << "group " << i;
    for (size_t k = 0; k < ga.members.size(); ++k) {
      EXPECT_EQ(ga.members[k], gb.members[k]) << "group " << i;
      EXPECT_EQ(ga.member_rhs[k], gb.member_rhs[k]) << "group " << i;
      EXPECT_EQ(ga.member_partners[k], gb.member_partners[k]) << "group " << i;
    }
  }
}

ViolationTable Detect(const Relation& rel, const std::vector<cfd::Cfd>& cfds,
                      const EncodedRelation* warm = nullptr) {
  NativeDetector detector(&rel, cfds);
  if (warm != nullptr) detector.set_encoded(warm);
  auto table = detector.Detect();
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  return table.ok() ? std::move(*table) : ViolationTable{};
}

/// The core round-trip property: save, load, and assert the loaded form is
/// indistinguishable — schema/ids/liveness, byte-identical code columns and
/// dictionaries, and identical detection output.
void ExpectLosslessRoundTrip(const Relation& rel, const std::string& cfd_text,
                             const std::string& tag) {
  const std::string path = TempPath("roundtrip_" + tag + ".sdq");
  const EncodedRelation enc(&rel);
  ASSERT_OK_AND_ASSIGN(SnapshotStats stats,
                       SnapshotWriter::Write(rel, enc, path));
  EXPECT_EQ(stats.live_rows, rel.size());
  EXPECT_EQ(stats.id_bound, static_cast<uint64_t>(rel.IdBound()));

  ASSERT_OK_AND_ASSIGN(LoadedSnapshot loaded, SnapshotReader::Read(path));
  EXPECT_EQ(loaded.saved_name, rel.name());
  EXPECT_EQ(loaded.manifest_checksum, stats.manifest_checksum);

  // Schema, ids, liveness, and cell values survive exactly.
  ASSERT_TRUE(loaded.relation.schema().Equals(rel.schema()));
  ASSERT_EQ(loaded.relation.IdBound(), rel.IdBound());
  EXPECT_EQ(loaded.relation.size(), rel.size());
  for (TupleId tid = 0; tid < rel.IdBound(); ++tid) {
    ASSERT_EQ(loaded.relation.IsLive(tid), rel.IsLive(tid)) << "tid " << tid;
    if (!rel.IsLive(tid)) continue;
    for (size_t c = 0; c < rel.schema().size(); ++c) {
      EXPECT_EQ(loaded.relation.cell(tid, c), rel.cell(tid, c))
          << "cell (" << tid << ", " << c << ")";
    }
  }

  // Code columns come back byte-identical, dictionaries value-identical.
  ASSERT_EQ(loaded.columns.size(), rel.schema().size());
  for (size_t c = 0; c < rel.schema().size(); ++c) {
    EXPECT_EQ(loaded.columns[c], enc.column(c)) << "column " << c;
    EXPECT_EQ(loaded.dicts[c]->values(), enc.dictionary(c).values())
        << "dictionary " << c;
  }

  // Detection over the loaded snapshot is exactly detection over the
  // original — both through the adopted encoded form and through a fresh
  // re-encode of the reconstructed relation.
  if (!cfd_text.empty()) {
    const auto cfds = Parse(cfd_text);
    const ViolationTable original = Detect(rel, cfds);
    const EncodedRelation adopted = EncodedRelation::FromStorage(
        &loaded.relation, std::move(loaded.dicts), std::move(loaded.columns));
    ExpectTablesEqual(original, Detect(loaded.relation, cfds, &adopted));
    ExpectTablesEqual(original, Detect(loaded.relation, cfds));
  }
}

TEST(SnapshotTest, PaperCustomerRoundTrip) {
  ExpectLosslessRoundTrip(semandaq::testing::PaperCustomerRelation(),
                          semandaq::testing::PaperCfdText(), "paper_customer");
}

TEST(SnapshotTest, GeneratedWorkloadsRoundTripProperty) {
  // Property sweep: generated customer and hospital instances across seeds
  // and noise levels, with a deterministic sprinkle of deletions so
  // tombstoned TupleIds are exercised too.
  for (const uint64_t seed : {1u, 7u, 42u}) {
    workload::CustomerWorkloadOptions copts;
    copts.num_tuples = 400;
    copts.noise_rate = 0.08;
    copts.seed = seed;
    auto cwl = workload::CustomerGenerator::Generate(copts);
    for (TupleId tid = 0; tid < cwl.dirty.IdBound(); ++tid) {
      if (tid % 7 == 3) ASSERT_OK(cwl.dirty.Delete(tid));
    }
    ExpectLosslessRoundTrip(cwl.dirty, workload::CustomerGenerator::PaperCfds(),
                            "customer_s" + std::to_string(seed));

    workload::HospitalWorkloadOptions hopts;
    hopts.num_tuples = 300;
    hopts.noise_rate = 0.1;
    hopts.seed = seed;
    auto hwl = workload::HospitalGenerator::Generate(hopts);
    ExpectLosslessRoundTrip(hwl.dirty, workload::HospitalGenerator::HospitalCfds(),
                            "hospital_s" + std::to_string(seed));
  }
}

TEST(SnapshotTest, EmptyRelationRoundTrip) {
  Relation rel("empty", Schema::AllStrings({"A", "B", "C"}));
  ExpectLosslessRoundTrip(rel, "empty: [A] -> [B]", "empty");
}

TEST(SnapshotTest, NullHeavyRoundTrip) {
  auto rel = semandaq::testing::MakeStringRelation(
      "nullish", {"A", "B", "C"},
      {
          {"", "", ""},
          {"x", "", "1"},
          {"", "y", ""},
          {"x", "", "2"},
          {"", "", ""},
          {"x", "y", ""},
      });
  ExpectLosslessRoundTrip(rel, "nullish: [A] -> [C]", "nullheavy");
}

TEST(SnapshotTest, UnicodeRoundTrip) {
  auto rel = semandaq::testing::MakeStringRelation(
      "unicode", {"CITY", "NOTE"},
      {
          {"Z\xC3\xBCrich", "caf\xC3\xA9"},
          {"Z\xC3\xBCrich", "na\xC3\xAFve"},
          {"\xE6\x9D\xB1\xE4\xBA\xAC", "\xF0\x9F\x9A\x80"},
          {"M\xC3\xBCnchen", ""},
      });
  ExpectLosslessRoundTrip(rel, "unicode: [CITY] -> [NOTE]", "unicode");
}

TEST(SnapshotTest, TypedValuesRoundTrip) {
  Schema schema({{"NAME", relational::DataType::kString, {}},
                 {"N", relational::DataType::kInt, {}},
                 {"X", relational::DataType::kDouble, {}}});
  Relation rel("typed", schema);
  rel.MustInsert({Value::String("a"), Value::Int(42), Value::Double(2.5)});
  rel.MustInsert({Value::String("b"), Value::Int(-7), Value::Double(-0.125)});
  rel.MustInsert({Value::Null(), Value::Null(), Value::Null()});
  rel.MustInsert({Value::String("a"), Value::Int(42), Value::Double(3.75)});
  ExpectLosslessRoundTrip(rel, "typed: [NAME, N] -> [X]", "typed");
}

TEST(SnapshotTest, MinerOutputIdenticalOnLoadedSnapshot) {
  workload::CustomerWorkloadOptions opts;
  opts.num_tuples = 200;
  opts.noise_rate = 0.05;
  auto wl = workload::CustomerGenerator::Generate(opts);

  const std::string path = TempPath("miner.sdq");
  const EncodedRelation enc(&wl.dirty);
  ASSERT_OK_AND_ASSIGN(auto stats, SnapshotWriter::Write(wl.dirty, enc, path));
  (void)stats;
  ASSERT_OK_AND_ASSIGN(LoadedSnapshot loaded, SnapshotReader::Read(path));

  discovery::CfdMinerOptions mopts;
  mopts.max_lhs = 2;
  discovery::CfdMiner original(&wl.dirty, mopts);
  discovery::CfdMiner reloaded(&loaded.relation, mopts);
  ASSERT_OK_AND_ASSIGN(auto mined_a, original.Mine());
  ASSERT_OK_AND_ASSIGN(auto mined_b, reloaded.Mine());
  ASSERT_EQ(mined_a.size(), mined_b.size());
  for (size_t i = 0; i < mined_a.size(); ++i) {
    EXPECT_EQ(mined_a[i].ToString(), mined_b[i].ToString()) << "cfd " << i;
  }
}

TEST(SnapshotTest, WriterRejectsStaleOrForeignEncoded) {
  Relation rel = semandaq::testing::PaperCustomerRelation();
  EncodedRelation enc(&rel);
  rel.MustInsert(rel.row(0));  // the snapshot is now stale
  EXPECT_FALSE(SnapshotWriter::Write(rel, enc, TempPath("stale.sdq")).ok());

  Relation other = semandaq::testing::PaperCustomerRelation();
  const EncodedRelation other_enc(&other);
  EXPECT_FALSE(SnapshotWriter::Write(rel, other_enc, TempPath("foreign.sdq")).ok());
}

// ---------------------------------------------------------------- corruption

/// Saves the paper customer relation and hands back the raw snapshot bytes.
std::string WriteCustomerSnapshot(const std::string& path) {
  Relation rel = semandaq::testing::PaperCustomerRelation();
  const EncodedRelation enc(&rel);
  auto stats = SnapshotWriter::Write(rel, enc, path);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  auto bytes = common::ReadFileToString(path);
  EXPECT_TRUE(bytes.ok());
  return bytes.ok() ? *bytes : std::string();
}

void ExpectReadFails(const std::string& path, const std::string& bytes,
                     const std::string& message_fragment) {
  ASSERT_OK(common::WriteStringToFile(path, bytes));
  auto r = SnapshotReader::Read(path);
  ASSERT_FALSE(r.ok()) << "expected failure: " << message_fragment;
  EXPECT_EQ(r.status().code(), common::StatusCode::kIoError);
  EXPECT_NE(r.status().message().find(message_fragment), std::string::npos)
      << "got: " << r.status().message();
}

TEST(SnapshotCorruptionTest, BadMagicRejected) {
  const std::string path = TempPath("bad_magic.sdq");
  std::string bytes = WriteCustomerSnapshot(path);
  bytes[0] = 'X';
  ExpectReadFails(path, bytes, "bad magic");
}

TEST(SnapshotCorruptionTest, CorruptedHeaderRejected) {
  const std::string path = TempPath("bad_header.sdq");
  std::string bytes = WriteCustomerSnapshot(path);
  bytes[20] ^= 0x01;  // inside manifest_offset
  ExpectReadFails(path, bytes, "header checksum mismatch");
}

TEST(SnapshotCorruptionTest, CorruptedManifestRejected) {
  const std::string path = TempPath("bad_manifest.sdq");
  std::string bytes = WriteCustomerSnapshot(path);
  bytes.back() ^= 0x40;  // the manifest is the footer
  ExpectReadFails(path, bytes, "manifest checksum mismatch");
}

TEST(SnapshotCorruptionTest, TruncatedFileRejected) {
  const std::string path = TempPath("truncated.sdq");
  std::string bytes = WriteCustomerSnapshot(path);
  bytes.resize(bytes.size() - 64);
  ExpectReadFails(path, bytes, "truncated snapshot");
}

TEST(SnapshotCorruptionTest, CorruptedColumnSectionRejected) {
  const std::string path = TempPath("bad_column.sdq");
  std::string bytes = WriteCustomerSnapshot(path);
  // Flip a byte in the middle of the data area (between the header and the
  // manifest footer): whichever section it lands in must fail its checksum.
  uint64_t manifest_offset;
  std::memcpy(&manifest_offset, bytes.data() + 16, 8);
  bytes[(56 + manifest_offset) / 2] ^= 0x10;
  ExpectReadFails(path, bytes, "checksum mismatch");
}

TEST(SnapshotCorruptionTest, TruncatedColumnRejected) {
  const std::string path = TempPath("short_column.sdq");
  std::string bytes = WriteCustomerSnapshot(path);
  // Cut 16 bytes out of the tail of the last code array and re-stamp the
  // header so it is internally consistent: the manifest then points past
  // the data that actually exists, which must be caught as out-of-bounds
  // (never an out-of-bounds read).
  uint64_t manifest_offset;
  std::memcpy(&manifest_offset, bytes.data() + 16, 8);
  bytes.erase(static_cast<size_t>(manifest_offset) - 16, 16);
  const uint64_t new_manifest_offset = manifest_offset - 16;
  const uint64_t new_file_size = bytes.size();
  std::memcpy(&bytes[16], &new_manifest_offset, 8);
  std::memcpy(&bytes[40], &new_file_size, 8);
  const uint64_t header_checksum = Checksum64(bytes.data(), 48);
  std::memcpy(&bytes[48], &header_checksum, 8);
  ExpectReadFails(path, bytes, "out of bounds");
}

// ----------------------------------------------------------------------- WAL

TEST(WalTest, InsertTailReplaysThroughSyncAppendPath) {
  workload::CustomerWorkloadOptions opts;
  opts.num_tuples = 120;
  opts.noise_rate = 0.1;
  auto wl = workload::CustomerGenerator::Generate(opts);
  Relation& rel = wl.dirty;
  const auto cfds = Parse(workload::CustomerGenerator::PaperCfds());

  const std::string path = TempPath("wal_insert.sdq");
  EncodedRelation enc(&rel);
  ASSERT_OK_AND_ASSIGN(SnapshotStats stats, SnapshotWriter::Write(rel, enc, path));

  // Post-snapshot inserts go to the relation AND the WAL sidecar.
  ASSERT_OK_AND_ASSIGN(
      WalWriter wal,
      WalWriter::OpenExisting(WalPathFor(path), stats.manifest_checksum));
  std::vector<Row> tail = {rel.row(0), rel.row(3), rel.row(5)};
  tail[1][0] = Value::String("WalOnlyName");
  for (const Row& row : tail) {
    rel.MustInsert(row);
    ASSERT_OK(wal.AppendInsert(row));
  }
  enc.Sync();  // the in-memory reference follows the ordinary append path

  // Load = snapshot + WAL replay + Sync.
  ASSERT_OK_AND_ASSIGN(LoadedSnapshot loaded, SnapshotReader::Read(path));
  EncodedRelation adopted = EncodedRelation::FromStorage(
      &loaded.relation, std::move(loaded.dicts), std::move(loaded.columns));
  ASSERT_OK_AND_ASSIGN(
      size_t replayed,
      ReplayWal(WalPathFor(path), stats.manifest_checksum, &loaded.relation));
  EXPECT_EQ(replayed, tail.size());
  adopted.Sync();

  ASSERT_EQ(loaded.relation.IdBound(), rel.IdBound());
  for (size_t c = 0; c < rel.schema().size(); ++c) {
    EXPECT_EQ(adopted.column(c), enc.column(c)) << "column " << c;
  }
  ExpectTablesEqual(Detect(rel, cfds, &enc),
                    Detect(loaded.relation, cfds, &adopted));
}

TEST(WalTest, DeleteAndSetCellRecordsReplay) {
  Relation rel = semandaq::testing::PaperCustomerRelation();
  const auto cfds = Parse(semandaq::testing::PaperCfdText());
  const std::string path = TempPath("wal_mutate.sdq");
  EncodedRelation enc(&rel);
  ASSERT_OK_AND_ASSIGN(SnapshotStats stats, SnapshotWriter::Write(rel, enc, path));

  ASSERT_OK_AND_ASSIGN(
      WalWriter wal,
      WalWriter::OpenExisting(WalPathFor(path), stats.manifest_checksum));
  ASSERT_OK(rel.Delete(4));
  ASSERT_OK(wal.AppendDelete(4));
  ASSERT_OK(rel.SetCell(6, 1, Value::String("UK")));
  ASSERT_OK(wal.AppendSetCell(6, 1, Value::String("UK")));
  enc.Sync();

  ASSERT_OK_AND_ASSIGN(LoadedSnapshot loaded, SnapshotReader::Read(path));
  EncodedRelation adopted = EncodedRelation::FromStorage(
      &loaded.relation, std::move(loaded.dicts), std::move(loaded.columns));
  ASSERT_OK_AND_ASSIGN(
      size_t replayed,
      ReplayWal(WalPathFor(path), stats.manifest_checksum, &loaded.relation));
  EXPECT_EQ(replayed, 2u);
  adopted.Sync();

  EXPECT_FALSE(loaded.relation.IsLive(4));
  EXPECT_EQ(loaded.relation.cell(6, 1), Value::String("UK"));
  ExpectTablesEqual(Detect(rel, cfds, &enc),
                    Detect(loaded.relation, cfds, &adopted));
}

TEST(WalTest, TornTailIsDroppedCorruptMiddleIsNot) {
  Relation rel = semandaq::testing::PaperCustomerRelation();
  const std::string path = TempPath("wal_torn.sdq");
  EncodedRelation enc(&rel);
  ASSERT_OK_AND_ASSIGN(SnapshotStats stats, SnapshotWriter::Write(rel, enc, path));
  const std::string wal_path = WalPathFor(path);
  {
    ASSERT_OK_AND_ASSIGN(
        WalWriter wal, WalWriter::OpenExisting(wal_path, stats.manifest_checksum));
    ASSERT_OK(wal.AppendInsert(rel.row(0)));
    ASSERT_OK(wal.AppendInsert(rel.row(1)));
  }
  ASSERT_OK_AND_ASSIGN(std::string wal_bytes, common::ReadFileToString(wal_path));

  // A torn final record (half a frame) is a crash artifact: dropped.
  {
    Relation target = semandaq::testing::PaperCustomerRelation();
    ASSERT_OK(common::WriteStringToFile(wal_path, wal_bytes + "\x05\x00"));
    ASSERT_OK_AND_ASSIGN(
        size_t replayed, ReplayWal(wal_path, stats.manifest_checksum, &target));
    EXPECT_EQ(replayed, 2u);
  }

  // A checksum break before the tail is corruption: the load must fail.
  {
    Relation target = semandaq::testing::PaperCustomerRelation();
    std::string corrupt = wal_bytes;
    corrupt[32 + 12 + 3] ^= 0x20;  // inside the first record's payload
    ASSERT_OK(common::WriteStringToFile(wal_path, corrupt));
    auto r = ReplayWal(wal_path, stats.manifest_checksum, &target);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("checksum mismatch"), std::string::npos);
  }

  // OpenExisting truncates a torn tail so appends restart on a boundary.
  {
    ASSERT_OK(common::WriteStringToFile(wal_path, wal_bytes + "\x05\x00"));
    ASSERT_OK_AND_ASSIGN(
        WalWriter wal, WalWriter::OpenExisting(wal_path, stats.manifest_checksum));
    ASSERT_OK(wal.AppendInsert(rel.row(2)));
    Relation target = semandaq::testing::PaperCustomerRelation();
    ASSERT_OK_AND_ASSIGN(
        size_t replayed, ReplayWal(wal_path, stats.manifest_checksum, &target));
    EXPECT_EQ(replayed, 3u);
  }
}

TEST(WalTest, StampMismatchRejected) {
  Relation rel = semandaq::testing::PaperCustomerRelation();
  const std::string path = TempPath("wal_stamp.sdq");
  const EncodedRelation enc(&rel);
  ASSERT_OK_AND_ASSIGN(SnapshotStats stats, SnapshotWriter::Write(rel, enc, path));

  // Appending under a foreign stamp is never allowed, even while empty.
  EXPECT_FALSE(
      WalWriter::OpenExisting(WalPathFor(path), stats.manifest_checksum + 1).ok());

  // Replaying an *empty* foreign-stamped sidecar is the benign crash
  // artifact of the two-rename publish: treated as an empty tail.
  Relation target = semandaq::testing::PaperCustomerRelation();
  ASSERT_OK_AND_ASSIGN(
      size_t replayed,
      ReplayWal(WalPathFor(path), stats.manifest_checksum + 1, &target));
  EXPECT_EQ(replayed, 0u);

  // With records in it, a foreign stamp is a real mismatch: refuse.
  {
    ASSERT_OK_AND_ASSIGN(
        WalWriter wal,
        WalWriter::OpenExisting(WalPathFor(path), stats.manifest_checksum));
    ASSERT_OK(wal.AppendInsert(rel.row(0)));
  }
  auto r = ReplayWal(WalPathFor(path), stats.manifest_checksum + 1, &target);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("stamp mismatch"), std::string::npos);
}

TEST(WalTest, MissingSidecarIsAnEmptyTail) {
  Relation rel = semandaq::testing::PaperCustomerRelation();
  ASSERT_OK_AND_ASSIGN(
      size_t replayed,
      ReplayWal(TempPath("never_written.wal"), 123, &rel));
  EXPECT_EQ(replayed, 0u);
}

// ------------------------------------------------------------ facade wiring

TEST(SemandaqStorageTest, SaveOpenDetectMatchesInMemory) {
  const std::string path = TempPath("facade.sdq");
  core::Semandaq sys;
  ASSERT_OK(sys.Connect(semandaq::testing::PaperCustomerRelation()));
  ASSERT_OK(sys.constraints().AddCfdsFromText(semandaq::testing::PaperCfdText()));
  ASSERT_OK_AND_ASSIGN(auto saved, sys.SaveRelation("customer", path));
  EXPECT_EQ(saved.live_rows, 7u);
  // Saving warms the facade's snapshot for subsequent detections.
  ASSERT_NE(sys.WarmSnapshot("customer"), nullptr);

  ASSERT_OK_AND_ASSIGN(auto opened, sys.OpenRelation("customer2", path));
  EXPECT_EQ(opened.live_rows, 7u);
  EXPECT_EQ(opened.wal_records, 0u);
  ASSERT_NE(sys.WarmSnapshot("customer2"), nullptr);

  ASSERT_OK(sys.constraints().AddCfdsFromText(
      "customer2: [CNT=UK, ZIP=_] -> [STR=_]\n"
      "customer2: [CC=44] -> [CNT=UK]\n"));
  ASSERT_OK_AND_ASSIGN(auto original, sys.DetectErrors("customer"));
  ASSERT_OK_AND_ASSIGN(auto reloaded, sys.DetectErrors("customer2"));
  ExpectTablesEqual(original, reloaded);

  // A taken name or a missing file must fail without side effects.
  EXPECT_FALSE(sys.OpenRelation("customer", path).ok());
  EXPECT_FALSE(sys.OpenRelation("nope", TempPath("missing.sdq")).ok());
  EXPECT_EQ(sys.WarmSnapshot("nope"), nullptr);
}

TEST(SemandaqStorageTest, WarmSnapshotSurvivesRepairCycle) {
  const std::string path = TempPath("facade_repair.sdq");
  core::Semandaq sys;
  ASSERT_OK(sys.Connect(semandaq::testing::PaperCustomerRelation()));
  ASSERT_OK(sys.constraints().AddCfdsFromText(semandaq::testing::PaperCfdText()));
  ASSERT_OK_AND_ASSIGN(auto saved, sys.SaveRelation("customer", path));
  (void)saved;

  // Repairs overwrite cells in place; the warm snapshot must resync (full
  // rebuild) rather than serve stale codes: the warm detection must match a
  // cold re-encode of the repaired relation exactly.
  ASSERT_OK_AND_ASSIGN(auto repair, sys.Clean("customer"));
  ASSERT_OK(sys.ApplyRepair("customer", repair));
  ASSERT_OK_AND_ASSIGN(auto warm_detect, sys.DetectErrors("customer"));
  const Relation* rel = sys.database().FindRelation("customer");
  ASSERT_NE(rel, nullptr);
  ExpectTablesEqual(Detect(*rel, Parse(semandaq::testing::PaperCfdText())),
                    warm_detect);
}

}  // namespace
}  // namespace semandaq::storage
