// Equivalence of the dictionary-encoded fast paths with the row-hash
// reference paths: detection (NativeDetector use_encoded on/off) and
// discovery partitions (Partition::Build over codes vs. over Rows) must
// produce identical results on noisy generated workloads.

#include <algorithm>
#include <tuple>

#include <gtest/gtest.h>

#include "cfd/cfd_parser.h"
#include "detect/incremental_detector.h"
#include "detect/native_detector.h"
#include "discovery/partition.h"
#include "relational/encoded_relation.h"
#include "test_util.h"
#include "workload/customer_gen.h"
#include "workload/hospital_gen.h"

namespace semandaq::detect {
namespace {

using discovery::Partition;
using relational::EncodedRelation;
using relational::Relation;
using relational::TupleId;
using relational::Value;

std::vector<cfd::Cfd> Parse(const std::string& text) {
  auto r = cfd::ParseCfdSet(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(*r) : std::vector<cfd::Cfd>{};
}

/// Group emission order is an implementation detail (hash order on the row
/// path, first-touch order on the encoded path), and so is member order
/// within a group (the incremental detector re-appends modified tuples).
/// Canonical form: (member, rhs) pairs sorted by member, groups sorted by
/// (fd_group, smallest member).
struct CanonicalGroup {
  int fd_group = -1;
  int cfd_index = -1;
  relational::Row lhs_key;
  std::vector<std::pair<TupleId, Value>> members;
};

std::vector<CanonicalGroup> CanonicalGroups(const ViolationTable& t) {
  std::vector<CanonicalGroup> out;
  out.reserve(t.groups().size());
  for (const auto& g : t.groups()) {
    CanonicalGroup cg;
    cg.fd_group = g.fd_group;
    cg.cfd_index = g.cfd_index;
    cg.lhs_key = g.lhs_key;
    for (size_t i = 0; i < g.members.size(); ++i) {
      cg.members.emplace_back(g.members[i], g.member_rhs[i]);
    }
    std::sort(cg.members.begin(), cg.members.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    out.push_back(std::move(cg));
  }
  std::sort(out.begin(), out.end(),
            [](const CanonicalGroup& a, const CanonicalGroup& b) {
              if (a.fd_group != b.fd_group) return a.fd_group < b.fd_group;
              return a.members.front().first < b.members.front().first;
            });
  return out;
}

void ExpectIdenticalTables(const ViolationTable& row_table,
                           const ViolationTable& enc_table,
                           const Relation& rel) {
  EXPECT_EQ(row_table.TotalVio(), enc_table.TotalVio());
  EXPECT_EQ(row_table.NumViolatingTuples(), enc_table.NumViolatingTuples());
  for (TupleId tid = 0; tid < rel.IdBound(); ++tid) {
    ASSERT_EQ(row_table.vio(tid), enc_table.vio(tid))
        << "vio mismatch at tuple " << tid;
  }

  // Canonicalize singles: full detection emits them group-major while the
  // incremental Snapshot emits them tid-major.
  auto canonical_singles = [](const ViolationTable& t) {
    std::vector<std::tuple<TupleId, int, int>> out;
    out.reserve(t.singles().size());
    for (const SingleViolation& s : t.singles()) {
      out.emplace_back(s.tid, s.cfd_index, s.pattern_index);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(canonical_singles(row_table), canonical_singles(enc_table));

  const auto ga = CanonicalGroups(row_table);
  const auto gb = CanonicalGroups(enc_table);
  ASSERT_EQ(ga.size(), gb.size());
  for (size_t i = 0; i < ga.size(); ++i) {
    EXPECT_EQ(ga[i].fd_group, gb[i].fd_group);
    EXPECT_EQ(ga[i].cfd_index, gb[i].cfd_index);
    ASSERT_EQ(ga[i].lhs_key.size(), gb[i].lhs_key.size());
    for (size_t k = 0; k < ga[i].lhs_key.size(); ++k) {
      EXPECT_EQ(ga[i].lhs_key[k], gb[i].lhs_key[k])
          << "lhs_key mismatch in group " << i;
    }
    ASSERT_EQ(ga[i].members.size(), gb[i].members.size());
    for (size_t k = 0; k < ga[i].members.size(); ++k) {
      EXPECT_EQ(ga[i].members[k].first, gb[i].members[k].first);
      EXPECT_EQ(ga[i].members[k].second, gb[i].members[k].second)
          << "rhs mismatch at member " << ga[i].members[k].first;
    }
  }
}

void ExpectDetectorEquivalence(const Relation& rel,
                               const std::vector<cfd::Cfd>& cfds) {
  NativeDetector row_detector(&rel, cfds, DetectorOptions{/*use_encoded=*/false});
  auto row_table = row_detector.Detect();
  ASSERT_TRUE(row_table.ok()) << row_table.status().ToString();

  NativeDetector enc_detector(&rel, cfds, DetectorOptions{/*use_encoded=*/true});
  auto enc_table = enc_detector.Detect();
  ASSERT_TRUE(enc_table.ok()) << enc_table.status().ToString();

  ExpectIdenticalTables(*row_table, *enc_table, rel);

  // Same again through an externally owned warm snapshot.
  EncodedRelation warm(&rel);
  NativeDetector warm_detector(&rel, cfds);
  warm_detector.set_encoded(&warm);
  auto warm_table = warm_detector.Detect();
  ASSERT_TRUE(warm_table.ok()) << warm_table.status().ToString();
  ExpectIdenticalTables(*row_table, *warm_table, rel);
}

TEST(EncodedEquivalenceTest, NoisyCustomerDetection) {
  workload::CustomerWorkloadOptions opts;
  opts.num_tuples = 3000;
  opts.noise_rate = 0.10;
  opts.seed = 7;
  const auto wl = workload::CustomerGenerator::Generate(opts);
  ExpectDetectorEquivalence(wl.dirty,
                            Parse(workload::CustomerGenerator::PaperCfds()));
}

TEST(EncodedEquivalenceTest, NoisyHospitalDetection) {
  workload::HospitalWorkloadOptions opts;
  opts.num_tuples = 3000;
  opts.noise_rate = 0.10;
  opts.seed = 8;
  const auto wl = workload::HospitalGenerator::Generate(opts);
  ExpectDetectorEquivalence(wl.dirty,
                            Parse(workload::HospitalGenerator::HospitalCfds()));
}

TEST(EncodedEquivalenceTest, PaperExampleDetection) {
  const Relation rel = semandaq::testing::PaperCustomerRelation();
  ExpectDetectorEquivalence(rel, Parse(semandaq::testing::PaperCfdText()));
}

TEST(EncodedEquivalenceTest, NullHeavyEdgeCases) {
  // NULL LHS never groups; NULL RHS is "unknown, not wrong"; constants
  // absent from the data are compiled out.
  const Relation rel = semandaq::testing::MakeStringRelation(
      "t", {"A", "B", "C"},
      {{"", "x", "1"},
       {"", "y", "1"},
       {"1", "x", ""},
       {"1", "y", "2"},
       {"1", "", "2"},
       {"2", "z", "9"}});
  ExpectDetectorEquivalence(
      rel, Parse("t: [A] -> [B]\n"
                 "t: [A=1] -> [C=2]\n"
                 "t: [A=7] -> [C=5]\n"));  // A=7 absent from the data
}

TEST(EncodedEquivalenceTest, NullPatternConstantMatchesNothing) {
  // A NULL pattern *constant* is legal via the public API and matches no
  // tuple (PatternValue::Matches rejects NULL cells); the encoded compiler
  // must not conflate it with kNullCode, which would match exactly the
  // NULL cells. Both paths — and the incremental detector — must agree.
  Relation rel = semandaq::testing::MakeStringRelation(
      "t", {"A", "B"}, {{"", "x"}, {"", "y"}, {"1", "x"}, {"1", "y"}});
  cfd::PatternTuple null_const_row;
  null_const_row.lhs = {cfd::PatternValue::Constant(Value::Null())};
  null_const_row.rhs = cfd::PatternValue::Wildcard();
  cfd::Cfd phi("t", {"A"}, "B", {null_const_row});
  ExpectDetectorEquivalence(rel, {phi});

  NativeDetector enc_detector(&rel, {phi});
  auto table = enc_detector.Detect();
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->TotalVio(), 0) << "NULL constant must match no tuple";

  IncrementalDetector inc(&rel, {phi});
  ASSERT_OK(inc.Initialize());
  EXPECT_TRUE(inc.Clean());
}

TEST(EncodedEquivalenceTest, StaleExternalSnapshotFallsBack) {
  Relation rel = semandaq::testing::MakeStringRelation(
      "t", {"A", "B"}, {{"1", "x"}, {"1", "x"}});
  EncodedRelation stale(&rel);
  rel.MustInsert({Value::String("1"), Value::String("y")});  // stale now
  NativeDetector detector(&rel, Parse("t: [A] -> [B]"));
  detector.set_encoded(&stale);
  auto table = detector.Detect();
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  // The conflict introduced after the snapshot must still be found.
  ASSERT_EQ(table->groups().size(), 1u);
  EXPECT_EQ(table->groups()[0].members.size(), 3u);
}

// -------------------------------------------------- Partition equivalence

void ExpectIdenticalPartitions(const Relation& rel,
                               const std::vector<size_t>& cols) {
  const Partition by_rows = Partition::Build(rel, cols);
  const EncodedRelation enc(&rel);
  const Partition by_codes = Partition::Build(enc, cols);

  // First-touch class numbering makes the two structurally identical, not
  // just isomorphic.
  EXPECT_EQ(by_rows.num_classes(), by_codes.num_classes());
  EXPECT_EQ(by_rows.num_tuples(), by_codes.num_tuples());
  for (TupleId tid = 0; tid < rel.IdBound(); ++tid) {
    ASSERT_EQ(by_rows.ClassOf(tid), by_codes.ClassOf(tid))
        << "class mismatch at tuple " << tid << " cols " << cols.size();
  }
  ASSERT_EQ(by_rows.classes().size(), by_codes.classes().size());
  for (size_t i = 0; i < by_rows.classes().size(); ++i) {
    EXPECT_EQ(by_rows.classes()[i], by_codes.classes()[i]);
  }
}

TEST(EncodedEquivalenceTest, PartitionsOnNoisyCustomer) {
  workload::CustomerWorkloadOptions opts;
  opts.num_tuples = 2000;
  opts.noise_rate = 0.10;
  opts.seed = 9;
  const auto wl = workload::CustomerGenerator::Generate(opts);
  using C = workload::CustomerGenerator;
  ExpectIdenticalPartitions(wl.dirty, {C::kCnt});
  ExpectIdenticalPartitions(wl.dirty, {C::kZip});
  ExpectIdenticalPartitions(wl.dirty, {C::kCnt, C::kZip});
  ExpectIdenticalPartitions(wl.dirty, {C::kCnt, C::kZip, C::kStr});
}

TEST(EncodedEquivalenceTest, PartitionsOnNoisyHospital) {
  workload::HospitalWorkloadOptions opts;
  opts.num_tuples = 2000;
  opts.noise_rate = 0.10;
  opts.seed = 10;
  const auto wl = workload::HospitalGenerator::Generate(opts);
  using H = workload::HospitalGenerator;
  ExpectIdenticalPartitions(wl.dirty, {H::kZip});
  ExpectIdenticalPartitions(wl.dirty, {H::kState, H::kCity});
  ExpectIdenticalPartitions(wl.dirty, {H::kState, H::kCity, H::kZip, H::kMcode});
}

TEST(EncodedEquivalenceTest, PartitionsWithNulls) {
  const Relation rel = semandaq::testing::MakeStringRelation(
      "t", {"A", "B"},
      {{"", "x"}, {"1", "x"}, {"1", ""}, {"1", "x"}, {"2", "y"}, {"", ""}});
  ExpectIdenticalPartitions(rel, {0});
  ExpectIdenticalPartitions(rel, {1});
  ExpectIdenticalPartitions(rel, {0, 1});
}

// ------------------------------------------- incremental detector parity

TEST(EncodedEquivalenceTest, IncrementalSnapshotMatchesBothFullPaths) {
  workload::CustomerWorkloadOptions opts;
  opts.num_tuples = 500;
  opts.noise_rate = 0.10;
  opts.seed = 11;
  auto wl = workload::CustomerGenerator::Generate(opts);
  const auto cfds = Parse(workload::CustomerGenerator::PaperCfds());

  IncrementalDetector inc(&wl.dirty, cfds);
  ASSERT_OK(inc.Initialize());
  // Churn: modify some cells, delete a tuple, insert a conflicting one.
  ASSERT_OK(inc.ApplyAndDetect(
      {relational::Update::Modify(3, workload::CustomerGenerator::kStr,
                                  Value::String("Broadway")),
       relational::Update::DeleteTuple(10),
       relational::Update::Modify(42, workload::CustomerGenerator::kCnt,
                                  Value::String("UK"))}));
  const ViolationTable snap = inc.Snapshot();

  NativeDetector rows(&wl.dirty, cfds, DetectorOptions{/*use_encoded=*/false});
  auto row_table = rows.Detect();
  ASSERT_TRUE(row_table.ok());
  ExpectIdenticalTables(*row_table, snap, wl.dirty);

  NativeDetector enc(&wl.dirty, cfds);
  auto enc_table = enc.Detect();
  ASSERT_TRUE(enc_table.ok());
  ExpectIdenticalTables(*enc_table, snap, wl.dirty);
}

}  // namespace
}  // namespace semandaq::detect
