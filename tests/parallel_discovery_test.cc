// Parallel discovery partition builds (FdMinerOptions::pool /
// CfdMinerOptions::pool): the per-attribute base Partition::Build calls
// fan out over a borrowed ThreadPool, and the mined output must be
// IDENTICAL to the serial run — same FDs/CFDs in the same order — because
// class ids are first-touch-ordered per partition and the levelwise sweep
// itself stays deterministic.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "discovery/cfd_miner.h"
#include "discovery/fd_miner.h"
#include "test_util.h"
#include "workload/customer_gen.h"
#include "workload/hospital_gen.h"

namespace semandaq::discovery {
namespace {

using relational::Relation;
using relational::TupleId;

std::string FdToString(const DiscoveredFd& fd) {
  std::string s = "[";
  for (size_t c : fd.lhs_cols) s += std::to_string(c) + ",";
  s += "]->" + std::to_string(fd.rhs_col);
  return s;
}

void ExpectIdenticalMining(const Relation& rel) {
  common::ThreadPool pool(4);

  // FD miner: serial vs pooled.
  FdMinerOptions serial_fd;
  FdMinerOptions pooled_fd;
  pooled_fd.pool = &pool;
  const auto serial_fds = FdMiner(&rel, serial_fd).Mine();
  const auto pooled_fds = FdMiner(&rel, pooled_fd).Mine();
  ASSERT_EQ(serial_fds.size(), pooled_fds.size());
  for (size_t i = 0; i < serial_fds.size(); ++i) {
    EXPECT_EQ(serial_fds[i].lhs_cols, pooled_fds[i].lhs_cols)
        << "fd " << i << ": " << FdToString(serial_fds[i]) << " vs "
        << FdToString(pooled_fds[i]);
    EXPECT_EQ(serial_fds[i].rhs_col, pooled_fds[i].rhs_col) << "fd " << i;
  }

  // CFD miner: serial vs pooled, exact tableau text equality.
  CfdMinerOptions serial_cfd;
  CfdMinerOptions pooled_cfd;
  pooled_cfd.pool = &pool;
  auto serial_mined = CfdMiner(&rel, serial_cfd).Mine();
  auto pooled_mined = CfdMiner(&rel, pooled_cfd).Mine();
  ASSERT_TRUE(serial_mined.ok()) << serial_mined.status().ToString();
  ASSERT_TRUE(pooled_mined.ok()) << pooled_mined.status().ToString();
  ASSERT_EQ(serial_mined->size(), pooled_mined->size());
  for (size_t i = 0; i < serial_mined->size(); ++i) {
    EXPECT_EQ((*serial_mined)[i].ToString(), (*pooled_mined)[i].ToString())
        << "cfd " << i;
  }

  // The row-hash fallback path must fan out identically too.
  FdMinerOptions pooled_rows;
  pooled_rows.pool = &pool;
  pooled_rows.use_encoded = false;
  const auto row_fds = FdMiner(&rel, pooled_rows).Mine();
  ASSERT_EQ(serial_fds.size(), row_fds.size());
  for (size_t i = 0; i < serial_fds.size(); ++i) {
    EXPECT_EQ(serial_fds[i].lhs_cols, row_fds[i].lhs_cols) << "fd " << i;
    EXPECT_EQ(serial_fds[i].rhs_col, row_fds[i].rhs_col) << "fd " << i;
  }
}

TEST(ParallelDiscoveryTest, PaperCustomerIdentical) {
  ExpectIdenticalMining(semandaq::testing::PaperCustomerRelation());
}

TEST(ParallelDiscoveryTest, GeneratedCustomerWithTombstonesIdentical) {
  workload::CustomerWorkloadOptions opts;
  opts.num_tuples = 300;
  opts.noise_rate = 0.05;
  opts.seed = 9;
  auto wl = workload::CustomerGenerator::Generate(opts);
  for (TupleId tid = 0; tid < wl.dirty.IdBound(); ++tid) {
    if (tid % 9 == 2) ASSERT_OK(wl.dirty.Delete(tid));
  }
  ExpectIdenticalMining(wl.dirty);
}

TEST(ParallelDiscoveryTest, HospitalIdentical) {
  workload::HospitalWorkloadOptions opts;
  opts.num_tuples = 200;
  opts.noise_rate = 0.05;
  auto wl = workload::HospitalGenerator::Generate(opts);
  ExpectIdenticalMining(wl.clean);
}

TEST(ParallelDiscoveryTest, SingleLanePoolAndEmptyRelation) {
  // Degenerate shapes: a 1-lane pool (fan-out disabled by the lane check)
  // and an empty relation (nothing to partition).
  Relation empty("empty", relational::Schema::AllStrings({"A", "B"}));
  const auto serial = FdMiner(&empty).Mine();

  common::ThreadPool one(1);
  FdMinerOptions opts;
  opts.pool = &one;
  EXPECT_EQ(serial.size(), FdMiner(&empty, opts).Mine().size());

  common::ThreadPool four(4);
  opts.pool = &four;
  EXPECT_EQ(serial.size(), FdMiner(&empty, opts).Mine().size());
}

}  // namespace
}  // namespace semandaq::discovery
