// Parallel level-wise discovery: FdMiner/CfdMiner fan each lattice level's
// candidates out over a ThreadPool (FdMinerOptions::num_threads / ::pool)
// and run their partition builds, intersects, and evidence scans on a SIMD
// kernel tier — and the mined output must be IDENTICAL to the serial
// scalar run — same FDs/CFDs in the same order — for every thread count ×
// tier combination, because candidates are validated into per-candidate
// slots and emitted in the serial sweep's exact lexicographic order.
// Also covers the two-generation PartitionCache (level-scoped residency,
// rebuild-on-demand after eviction, never stale).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/simd/simd.h"
#include "common/thread_pool.h"
#include "core/session.h"
#include "discovery/cfd_miner.h"
#include "discovery/fd_miner.h"
#include "discovery/partition.h"
#include "relational/encoded_relation.h"
#include "test_util.h"
#include "workload/customer_gen.h"
#include "workload/hospital_gen.h"

namespace semandaq::discovery {
namespace {

namespace simd = common::simd;
using relational::Relation;
using relational::TupleId;

const simd::Level kLevels[] = {simd::Level::kScalar, simd::Level::kSse2,
                               simd::Level::kAvx2};
const size_t kThreadCounts[] = {1, 2, 4, 0};  // 0 = all hardware threads

std::string FdToString(const DiscoveredFd& fd) {
  std::string s = "[";
  for (size_t c : fd.lhs_cols) s += std::to_string(c) + ",";
  s += "]->" + std::to_string(fd.rhs_col);
  return s;
}

/// One line per mined FD, in emission order — the byte-identity surface.
std::string FdSignature(const std::vector<DiscoveredFd>& fds) {
  std::string s;
  for (const auto& fd : fds) s += FdToString(fd) + "\n";
  return s;
}

/// One line per mined CFD (full tableau text), in emission order.
std::string CfdSignature(const Relation& rel, const CfdMinerOptions& opts) {
  auto mined = CfdMiner(&rel, opts).Mine();
  EXPECT_TRUE(mined.ok()) << mined.status().ToString();
  std::string s;
  if (mined.ok()) {
    for (const auto& c : *mined) s += c.ToString() + "\n";
  }
  return s;
}

/// Mined FD and CFD output must be byte-identical to the serial scalar
/// sweep for every thread count × kernel tier (tiers above the host's
/// support clamp down, so the sweep is safe everywhere).
void ExpectIdenticalMining(const Relation& rel) {
  FdMinerOptions serial_fd;
  serial_fd.simd_level = simd::Level::kScalar;
  const std::string fd_base = FdSignature(FdMiner(&rel, serial_fd).Mine());

  CfdMinerOptions serial_cfd;
  serial_cfd.simd_level = simd::Level::kScalar;
  const std::string cfd_base = CfdSignature(rel, serial_cfd);

  for (size_t threads : kThreadCounts) {
    for (simd::Level level : kLevels) {
      SCOPED_TRACE(std::string("threads=") + std::to_string(threads) +
                   " level=" + std::string(simd::LevelName(level)));
      FdMinerOptions fo;
      fo.num_threads = threads;
      fo.simd_level = level;
      EXPECT_EQ(fd_base, FdSignature(FdMiner(&rel, fo).Mine()));

      CfdMinerOptions co;
      co.num_threads = threads;
      co.simd_level = level;
      EXPECT_EQ(cfd_base, CfdSignature(rel, co));
    }
  }

  // A borrowed pool must behave exactly like num_threads (the facade path).
  common::ThreadPool pool(4);
  FdMinerOptions pooled_fd;
  pooled_fd.pool = &pool;
  EXPECT_EQ(fd_base, FdSignature(FdMiner(&rel, pooled_fd).Mine()));
  CfdMinerOptions pooled_cfd;
  pooled_cfd.pool = &pool;
  EXPECT_EQ(cfd_base, CfdSignature(rel, pooled_cfd));

  // The row-hash fallback path must fan out identically too.
  FdMinerOptions rows_fd;
  rows_fd.use_encoded = false;
  rows_fd.num_threads = 4;
  EXPECT_EQ(fd_base, FdSignature(FdMiner(&rel, rows_fd).Mine()));
  CfdMinerOptions rows_cfd;
  rows_cfd.use_encoded = false;
  rows_cfd.num_threads = 4;
  EXPECT_EQ(cfd_base, CfdSignature(rel, rows_cfd));

  // The e(X) == e(X∪A) early-exit is an optimization, never a semantic.
  FdMinerOptions no_exit;
  no_exit.use_error_exit = false;
  EXPECT_EQ(fd_base, FdSignature(FdMiner(&rel, no_exit).Mine()));
}

TEST(ParallelDiscoveryTest, PaperCustomerIdentical) {
  ExpectIdenticalMining(semandaq::testing::PaperCustomerRelation());
}

TEST(ParallelDiscoveryTest, GeneratedCustomerWithTombstonesIdentical) {
  workload::CustomerWorkloadOptions opts;
  opts.num_tuples = 300;
  opts.noise_rate = 0.05;
  opts.seed = 9;
  auto wl = workload::CustomerGenerator::Generate(opts);
  for (TupleId tid = 0; tid < wl.dirty.IdBound(); ++tid) {
    if (tid % 9 == 2) ASSERT_OK(wl.dirty.Delete(tid));
  }
  ExpectIdenticalMining(wl.dirty);
}

TEST(ParallelDiscoveryTest, HospitalIdentical) {
  workload::HospitalWorkloadOptions opts;
  opts.num_tuples = 200;
  opts.noise_rate = 0.05;
  auto wl = workload::HospitalGenerator::Generate(opts);
  ExpectIdenticalMining(wl.clean);
}

TEST(ParallelDiscoveryTest, EmptyRelationIdentical) {
  Relation empty("empty", relational::Schema::AllStrings({"A", "B", "C"}));
  ExpectIdenticalMining(empty);
}

TEST(ParallelDiscoveryTest, NullHeavyIdentical) {
  // NULLs drop tuples out of partitions and evidence scans (a NULL cannot
  // witness equality), so a NULL-heavy relation exercises every mask path.
  ExpectIdenticalMining(semandaq::testing::MakeStringRelation(
      "nullish", {"A", "B", "C", "D"},
      {
          {"a", "", "x", "1"},
          {"a", "b", "", "1"},
          {"", "b", "x", "2"},
          {"a", "b", "x", ""},
          {"a", "", "x", "1"},
          {"c", "b", "", ""},
          {"", "", "", ""},
          {"a", "b", "x", "1"},
          {"c", "d", "y", "2"},
          {"c", "d", "y", "2"},
      }));
}

TEST(ParallelDiscoveryTest, SingleLanePoolAndEmptyRelation) {
  // Degenerate shapes: a 1-lane pool (fan-out disabled by the lane check)
  // and an empty relation (nothing to partition).
  Relation empty("empty", relational::Schema::AllStrings({"A", "B"}));
  const auto serial = FdMiner(&empty).Mine();

  common::ThreadPool one(1);
  FdMinerOptions opts;
  opts.pool = &one;
  EXPECT_EQ(serial.size(), FdMiner(&empty, opts).Mine().size());

  common::ThreadPool four(4);
  opts.pool = &four;
  EXPECT_EQ(serial.size(), FdMiner(&empty, opts).Mine().size());
}

TEST(ParallelDiscoveryTest, FacadeMineCommandMatchesSerial) {
  // The CLI surface: `mine REL threads=N` must add the same CFDs in the
  // same order as the serial `mine REL` (and report the same count).
  auto run = [](const std::string& mine_cmd) {
    core::Session session;
    auto gen = session.Execute("gen customer 200 5");
    EXPECT_TRUE(gen.ok()) << gen.status().ToString();
    auto mined = session.Execute(mine_cmd);
    EXPECT_TRUE(mined.ok()) << mined.status().ToString();
    std::string listing;
    for (const auto& c : session.system().constraints().cfds()) {
      listing += c.ToString() + "\n";
    }
    return (mined.ok() ? *mined : std::string()) + listing;
  };
  const std::string serial = run("mine customer_gold");
  EXPECT_EQ(serial, run("mine customer_gold threads=2"));
  EXPECT_EQ(serial, run("mine customer_gold threads=0 simd=scalar"));
}

// ---------------------------------------------------------------------------
// PartitionCache: two-generation, level-scoped partition memory.

void ExpectSamePartition(const Partition& a, const Partition& b) {
  EXPECT_EQ(a.num_classes(), b.num_classes());
  EXPECT_EQ(a.num_tuples(), b.num_tuples());
  EXPECT_EQ(a.Error(), b.Error());
  ASSERT_EQ(a.classes().size(), b.classes().size());
  for (size_t i = 0; i < a.classes().size(); ++i) {
    EXPECT_EQ(a.classes()[i], b.classes()[i]) << "class " << i;
  }
}

TEST(PartitionCacheTest, EvictedPartitionsRebuildOnDemandNeverStale) {
  Relation rel = semandaq::testing::PaperCustomerRelation();
  relational::EncodedRelation enc(&rel);
  PartitionCache cache(&rel, &enc);

  const Partition& first = cache.Get({1, 3});
  const Partition reference = Partition::Intersect(
      Partition::Build(enc, {1}), Partition::Build(enc, {3}));
  ExpectSamePartition(reference, first);
  EXPECT_EQ(cache.builds(), 1u);
  EXPECT_EQ(cache.resident(), 1u);
  EXPECT_EQ(cache.resident_bases(), 2u);  // singletons pin forever

  // Cached in the current generation, then in the previous one.
  cache.Get({1, 3});
  EXPECT_EQ(cache.builds(), 1u);
  cache.Rotate();
  cache.Get({1, 3});
  EXPECT_EQ(cache.builds(), 1u) << "previous generation must still serve";

  // Requests during the next level land in the new current generation;
  // the second rotate evicts the old product.
  cache.Rotate();
  EXPECT_EQ(cache.resident(), 0u);
  EXPECT_EQ(cache.resident_bases(), 2u);

  const Partition& rebuilt = cache.Get({1, 3});
  EXPECT_EQ(cache.builds(), 2u) << "evicted set must rebuild on demand";
  ExpectSamePartition(reference, rebuilt);
}

TEST(PartitionCacheTest, ResidencyStaysLevelScoped) {
  // Simulate the FD sweep's access pattern over 4 attributes: level k gets
  // its candidates (prefix products from the previous generation) plus the
  // level-(k+1) X∪A products, then rotates. Residency must never exceed
  // two lattice levels' worth of products.
  Relation rel = semandaq::testing::PaperCustomerRelation();
  relational::EncodedRelation enc(&rel);
  PartitionCache cache(&rel, &enc);
  const size_t ncols = 4;

  // Level 1: candidates are pinned bases; products of size 2 get built.
  for (size_t a = 0; a < ncols; ++a) {
    cache.Get({a});
    for (size_t b = a + 1; b < ncols; ++b) cache.Get({a, b});
  }
  EXPECT_EQ(cache.resident(), 6u);  // C(4,2)
  cache.Rotate();

  // Level 2: candidates hit the previous generation (no rebuilds);
  // size-3 products fill the current one.
  const size_t builds_before = cache.builds();
  for (size_t a = 0; a < ncols; ++a) {
    for (size_t b = a + 1; b < ncols; ++b) {
      cache.Get({a, b});
      for (size_t c = b + 1; c < ncols; ++c) cache.Get({a, b, c});
    }
  }
  EXPECT_EQ(cache.builds() - builds_before, 4u);  // only the C(4,3) triples
  EXPECT_EQ(cache.resident(), 10u);               // C(4,2) + C(4,3)
  cache.Rotate();
  EXPECT_EQ(cache.resident(), 4u);  // level-2 products evicted
}

TEST(PartitionCacheTest, AfterLevelHookSharesLevelPartitionsWithCfdSweep) {
  // The CFD miner rides FdMiner::Mine's after-level hook so its level-k
  // conditional sweep reads the level-k partitions the FD validation just
  // used out of the shared cache. Simulate both schedules over one
  // workload: the old back-to-back walk (FD sweep, then a second level
  // walk) must rebuild every level the FD rotations evicted, while inside
  // the hook the level's candidate partitions are still resident and cost
  // zero extra builds.
  workload::CustomerWorkloadOptions wopts;
  wopts.num_tuples = 300;
  wopts.noise_rate = 0.05;
  wopts.seed = 7;
  auto wl = workload::CustomerGenerator::Generate(wopts);
  const size_t ncols = wl.dirty.schema().size();
  constexpr size_t kMaxLhs = 3;
  FdMinerOptions opts;
  opts.max_lhs = kMaxLhs;
  FdMiner miner(&wl.dirty, opts);

  // The CFD sweep's per-level access: every level-k candidate partition.
  auto touch_level = [&](PartitionCache* cache, size_t level) {
    for (size_t a = 0; a < ncols; ++a) {
      if (level == 1) {
        cache->Get({a});
        continue;
      }
      for (size_t b = a + 1; b < ncols; ++b) {
        if (level == 2) {
          cache->Get({a, b});
          continue;
        }
        for (size_t c = b + 1; c < ncols; ++c) cache->Get({a, b, c});
      }
    }
  };

  // Old schedule: full FD run, then a separate level walk with its own
  // rotations (what CfdMiner::Mine did before the hook existed).
  relational::EncodedRelation enc_a(&wl.dirty);
  PartitionCache cache_a(&wl.dirty, &enc_a);
  const auto fds_a = miner.Mine(&cache_a, nullptr);
  for (size_t level = 1; level <= kMaxLhs && level < ncols; ++level) {
    touch_level(&cache_a, level);
    cache_a.Rotate();
  }
  const size_t sequential_builds = cache_a.builds();

  // Interleaved schedule: the same accesses inside the hook are all
  // resident hits.
  relational::EncodedRelation enc_b(&wl.dirty);
  PartitionCache cache_b(&wl.dirty, &enc_b);
  std::vector<size_t> hook_levels;
  const auto fds_b = miner.Mine(
      &cache_b, nullptr,
      [&](size_t level, const std::vector<DiscoveredFd>& found) {
        hook_levels.push_back(level);
        EXPECT_LE(found.size(), fds_a.size());
        const size_t before = cache_b.builds();
        touch_level(&cache_b, level);
        EXPECT_EQ(cache_b.builds(), before)
            << "level-" << level << " partitions must be resident in the hook";
      });

  EXPECT_EQ(FdSignature(fds_a), FdSignature(fds_b))
      << "the hook must not perturb the mined FDs";
  EXPECT_EQ(hook_levels, (std::vector<size_t>{1, 2, 3}));
  EXPECT_LT(cache_b.builds(), sequential_builds)
      << "interleaving must save the second sweep's rebuilds";
}

TEST(PartitionCacheTest, ConcurrentGetsAreSafeAndDeterministic) {
  workload::CustomerWorkloadOptions wopts;
  wopts.num_tuples = 400;
  wopts.noise_rate = 0.1;
  wopts.seed = 11;
  auto wl = workload::CustomerGenerator::Generate(wopts);
  relational::EncodedRelation enc(&wl.dirty);
  const size_t ncols = wl.dirty.schema().size();

  // Reference partitions, serially.
  std::vector<Partition> reference;
  for (size_t a = 0; a < ncols; ++a) {
    for (size_t b = a + 1; b < ncols; ++b) {
      reference.push_back(Partition::Intersect(Partition::Build(enc, {a}),
                                               Partition::Build(enc, {b})));
    }
  }

  common::ThreadPool pool(4);
  PartitionCache cache(&wl.dirty, &enc);
  std::vector<std::vector<size_t>> wanted;
  for (size_t a = 0; a < ncols; ++a) {
    for (size_t b = a + 1; b < ncols; ++b) wanted.push_back({a, b});
  }
  std::vector<const Partition*> got(wanted.size());
  pool.Run(wanted.size(), [&](size_t i) { got[i] = &cache.Get(wanted[i]); });
  for (size_t i = 0; i < wanted.size(); ++i) {
    SCOPED_TRACE("pair " + std::to_string(i));
    ExpectSamePartition(reference[i], *got[i]);
  }
}

TEST(FdMinerTest, HoldsMatchesEncodedAndRowPaths) {
  const Relation rel = semandaq::testing::PaperCustomerRelation();
  for (size_t rhs = 0; rhs < rel.schema().size(); ++rhs) {
    for (size_t lhs = 0; lhs < rel.schema().size(); ++lhs) {
      if (lhs == rhs) continue;
      EXPECT_EQ(FdMiner::Holds(rel, {lhs}, rhs, /*use_encoded=*/true),
                FdMiner::Holds(rel, {lhs}, rhs, /*use_encoded=*/false))
          << "lhs=" << lhs << " rhs=" << rhs;
    }
  }
}

}  // namespace
}  // namespace semandaq::discovery
