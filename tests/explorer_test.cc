#include <gtest/gtest.h>

#include "cfd/cfd_parser.h"
#include "core/explorer.h"
#include "detect/native_detector.h"
#include "test_util.h"

namespace semandaq::core {
namespace {

using relational::Relation;
using relational::Row;
using relational::Value;

class ExplorerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rel_ = semandaq::testing::PaperCustomerRelation();
    auto parsed = cfd::ParseCfdSet(semandaq::testing::PaperCfdText());
    ASSERT_TRUE(parsed.ok());
    cfds_ = std::move(*parsed);
    detect::NativeDetector detector(&rel_, cfds_);
    auto table = detector.Detect();
    ASSERT_TRUE(table.ok());
    // The explorer needs resolved CFDs; the detector resolved its own copy,
    // so resolve ours too.
    for (auto& c : cfds_) ASSERT_OK(c.Resolve(rel_.schema()));
    table_ = std::move(*table);
  }

  Relation rel_;
  std::vector<cfd::Cfd> cfds_;
  detect::ViolationTable table_;
};

TEST_F(ExplorerTest, ListCfdsShowsViolationMass) {
  DataExplorer explorer(&rel_, &cfds_, &table_);
  ASSERT_OK_AND_ASSIGN(auto entries, explorer.ListCfds());
  ASSERT_EQ(entries.size(), 2u);
  // phi2 [CNT,ZIP]->[STR]: the UK group carries vio 1+2+1 = 4.
  EXPECT_EQ(entries[0].display, "[CNT, ZIP] -> [STR]");
  EXPECT_EQ(entries[0].violation_count, 4);
  // phi4 [CC]->[CNT]: Eve's vio 1 (CC=44 applies to UK tuples too, which
  // carry the group violations: Mike+Rick+Joe+Mary+Eve -> 1+2+1+0+1 = 5).
  EXPECT_EQ(entries[1].display, "[CC] -> [CNT]");
  EXPECT_EQ(entries[1].violation_count, 5);
}

TEST_F(ExplorerTest, PatternsShowMatchCounts) {
  DataExplorer explorer(&rel_, &cfds_, &table_);
  ASSERT_OK_AND_ASSIGN(auto patterns, explorer.PatternsOf(0));
  ASSERT_EQ(patterns.size(), 1u);
  EXPECT_EQ(patterns[0].display, "(UK, _ || _)");
  EXPECT_EQ(patterns[0].matching_tuples, 4u);  // Mike, Rick, Joe, Mary
  EXPECT_EQ(patterns[0].violation_count, 4);
}

TEST_F(ExplorerTest, LhsMatchesDrilldown) {
  // The Fig. 2 step: distinct (CNT, ZIP) under pattern (UK, _).
  DataExplorer explorer(&rel_, &cfds_, &table_);
  ASSERT_OK_AND_ASSIGN(auto matches, explorer.LhsMatches(0, 0));
  ASSERT_EQ(matches.size(), 2u);
  // Sorted dirtiest-first: (UK, EH2 4SD) with 3 tuples / 3 streets.
  EXPECT_EQ(matches[0].lhs[1], Value::String("EH2 4SD"));
  EXPECT_EQ(matches[0].tuple_count, 3u);
  EXPECT_EQ(matches[0].distinct_rhs, 2u);  // Mayfield Rd, Crichton St
  EXPECT_EQ(matches[0].violation_count, 4);
  EXPECT_EQ(matches[1].lhs[1], Value::String("EH8 9LE"));
  EXPECT_EQ(matches[1].violation_count, 0);
}

TEST_F(ExplorerTest, RhsValuesForSelectedLhs) {
  DataExplorer explorer(&rel_, &cfds_, &table_);
  Row lhs = {Value::String("UK"), Value::String("EH2 4SD")};
  ASSERT_OK_AND_ASSIGN(auto rhs, explorer.RhsValues(0, 0, lhs));
  ASSERT_EQ(rhs.size(), 2u);
  // Most frequent first.
  EXPECT_EQ(rhs[0].rhs, Value::String("Mayfield Rd"));
  EXPECT_EQ(rhs[0].tuple_count, 2u);
  EXPECT_EQ(rhs[1].rhs, Value::String("Crichton St"));
  EXPECT_EQ(rhs[1].tuple_count, 1u);
}

TEST_F(ExplorerTest, TuplesForFinalSelection) {
  DataExplorer explorer(&rel_, &cfds_, &table_);
  Row lhs = {Value::String("UK"), Value::String("EH2 4SD")};
  ASSERT_OK_AND_ASSIGN(auto tids,
                       explorer.TuplesFor(0, 0, lhs, Value::String("Mayfield Rd")));
  EXPECT_EQ(tids, (std::vector<relational::TupleId>{0, 2}));  // Mike, Joe
}

TEST_F(ExplorerTest, ReverseExplorationFromTuple) {
  DataExplorer explorer(&rel_, &cfds_, &table_);
  // Eve (6): matches phi4's LHS (CC=44); phi2's LHS (CNT=UK) does not match.
  ASSERT_OK_AND_ASSIGN(auto pairs, explorer.CfdsForTuple(6));
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first, 1);
  // Mike (0) matches phi2 (UK) but not... CC=44 matches phi4 too.
  ASSERT_OK_AND_ASSIGN(auto mike, explorer.CfdsForTuple(0));
  EXPECT_EQ(mike.size(), 2u);
}

TEST_F(ExplorerTest, RenderDrilldownShowsFourTables) {
  DataExplorer explorer(&rel_, &cfds_, &table_);
  Row lhs = {Value::String("UK"), Value::String("EH2 4SD")};
  const std::string out = explorer.RenderDrilldown(0, 0, lhs);
  EXPECT_NE(out.find("-- CFDs --"), std::string::npos);
  EXPECT_NE(out.find("-- pattern tuples --"), std::string::npos);
  EXPECT_NE(out.find("-- LHS matches --"), std::string::npos);
  EXPECT_NE(out.find("-- RHS values for"), std::string::npos);
  EXPECT_NE(out.find("Mayfield Rd"), std::string::npos);
}

TEST_F(ExplorerTest, IndexValidation) {
  DataExplorer explorer(&rel_, &cfds_, &table_);
  EXPECT_FALSE(explorer.PatternsOf(-1).ok());
  EXPECT_FALSE(explorer.PatternsOf(99).ok());
  EXPECT_FALSE(explorer.LhsMatches(0, 99).ok());
  EXPECT_FALSE(explorer.CfdsForTuple(999).ok());
}

}  // namespace
}  // namespace semandaq::core
