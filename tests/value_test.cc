#include "relational/value.h"

#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "test_util.h"

namespace semandaq::relational {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), DataType::kNull);
  EXPECT_EQ(v.ToDisplayString(), "NULL");
}

TEST(ValueTest, IntAccessors) {
  Value v = Value::Int(-42);
  EXPECT_EQ(v.type(), DataType::kInt);
  EXPECT_EQ(v.AsInt(), -42);
  EXPECT_EQ(v.ToDisplayString(), "-42");
  double num = 0;
  EXPECT_TRUE(v.ToNumeric(&num));
  EXPECT_DOUBLE_EQ(num, -42.0);
}

TEST(ValueTest, DoubleAccessors) {
  Value v = Value::Double(2.5);
  EXPECT_EQ(v.type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 2.5);
  EXPECT_EQ(v.ToDisplayString(), "2.5");
}

TEST(ValueTest, StringAccessors) {
  Value v = Value::String("Edinburgh");
  EXPECT_EQ(v.type(), DataType::kString);
  EXPECT_EQ(v.AsString(), "Edinburgh");
  double num = 0;
  EXPECT_FALSE(v.ToNumeric(&num));
}

TEST(ValueTest, SqlLiteralQuotesStrings) {
  EXPECT_EQ(Value::String("O'Hare").ToSqlLiteral(), "'O''Hare'");
  EXPECT_EQ(Value::Int(7).ToSqlLiteral(), "7");
  EXPECT_EQ(Value::Null().ToSqlLiteral(), "NULL");
}

TEST(ValueTest, ExactEquality) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_NE(Value::Int(1), Value::Int(2));
  EXPECT_EQ(Value::String("a"), Value::String("a"));
  EXPECT_NE(Value::String("a"), Value::String("b"));
  EXPECT_EQ(Value::Null(), Value::Null());
  // No coercion in exact equality: INT 1 != DOUBLE 1.0 as container keys.
  EXPECT_NE(Value::Int(1), Value::Double(1.0));
  EXPECT_NE(Value::Int(1), Value::String("1"));
}

TEST(ValueTest, CompareTotalOrder) {
  // NULL < numbers < strings.
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
  EXPECT_LT(Value::Int(5).Compare(Value::String("")), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  // Numeric cross-type comparison.
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(3.0).Compare(Value::Int(2)), 0);
  // String lexicographic.
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::String("zip").Hash(), Value::String("zip").Hash());
  EXPECT_EQ(Value::Int(9).Hash(), Value::Int(9).Hash());
  // Not required, but overwhelmingly expected:
  EXPECT_NE(Value::String("a").Hash(), Value::String("b").Hash());
}

TEST(ValueTest, WorksAsUnorderedKey) {
  std::unordered_map<Value, int, ValueHash> m;
  m[Value::String("x")] = 1;
  m[Value::Int(3)] = 2;
  m[Value::Null()] = 3;
  EXPECT_EQ(m.at(Value::String("x")), 1);
  EXPECT_EQ(m.at(Value::Int(3)), 2);
  EXPECT_EQ(m.at(Value::Null()), 3);
  EXPECT_EQ(m.size(), 3u);
}

TEST(RowTest, RowHashAndEq) {
  Row a = {Value::String("UK"), Value::Int(44)};
  Row b = {Value::String("UK"), Value::Int(44)};
  Row c = {Value::String("UK"), Value::Int(45)};
  EXPECT_TRUE(RowEq{}(a, b));
  EXPECT_FALSE(RowEq{}(a, c));
  EXPECT_EQ(RowHash{}(a), RowHash{}(b));
  std::unordered_set<Row, RowHash, RowEq> set;
  set.insert(a);
  set.insert(b);
  set.insert(c);
  EXPECT_EQ(set.size(), 2u);
}

TEST(RowTest, RowEqDifferentArity) {
  Row a = {Value::Int(1)};
  Row b = {Value::Int(1), Value::Int(2)};
  EXPECT_FALSE(RowEq{}(a, b));
}

TEST(RowTest, RowToString) {
  Row r = {Value::String("UK"), Value::Null(), Value::Int(3)};
  EXPECT_EQ(RowToString(r), "(UK, NULL, 3)");
}

TEST(DataTypeTest, Names) {
  EXPECT_STREQ(DataTypeToString(DataType::kInt), "INT");
  EXPECT_STREQ(DataTypeToString(DataType::kDouble), "DOUBLE");
  EXPECT_STREQ(DataTypeToString(DataType::kString), "STRING");
  EXPECT_STREQ(DataTypeToString(DataType::kNull), "NULL");
}

}  // namespace
}  // namespace semandaq::relational
