// Server-side cancellation and admission control over real sockets
// (src/server): per-request deadlines expire into wire status 3, a CANCEL
// control frame stops an in-flight mine with wire status 2, a client that
// vanishes mid-request gets its engine work cancelled by the watchdog,
// and cost-aware admission sheds the overflow with a busy frame whose
// retry hint CallIdempotent honors. Companion to the engine-level
// determinism sweep in tests/cancel_sweep_test.cc.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/status.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/service.h"
#include "server/tcp_server.h"
#include "test_util.h"

namespace semandaq::server {
namespace {

using Clock = std::chrono::steady_clock;

int64_t MsSince(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               start)
      .count();
}

/// Calls one command and requires both transport and server success.
std::string Call(Client* client, const std::string& command) {
  auto response = client->Call(command);
  EXPECT_TRUE(response.ok()) << command << ": "
                             << response.status().ToString();
  if (!response.ok()) return "";
  EXPECT_TRUE(response->ok) << command << ": " << response->text;
  return response->text;
}

/// A mine big enough (~hundreds of ms) that a cancel injected a few tens
/// of ms in lands mid-sweep, not after the fact.
void LoadSlowWorkload(Client* client) {
  EXPECT_NE(Call(client, "gen customer 30000 10").find("generated customer"),
            std::string::npos);
}

/// Polls a stats counter until it reaches `want` or the timeout passes.
template <typename Counter>
bool AwaitCounter(const Counter& counter, uint64_t want,
                  int timeout_ms = 5000) {
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (counter.load(std::memory_order_relaxed) < want &&
         Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return counter.load(std::memory_order_relaxed) >= want;
}

TEST(ServerCancelTest, DeadlineRequestExpiresIntoWireStatus3) {
  SemandaqService service;
  TcpServer server(&service);
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(Client client,
                       Client::Connect("127.0.0.1", server.port()));
  LoadSlowWorkload(&client);

  const auto start = Clock::now();
  ASSERT_OK_AND_ASSIGN(WireResponse resp,
                       client.CallWithDeadline("mine customer", 50));
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.status, WireStatus::kDeadlineExceeded);
  // The engine checkpoints densely enough that an expired deadline comes
  // back within tens of ms, not after the full sweep.
  EXPECT_LT(MsSince(start), 2000);

  // The cancelled mine published nothing: Sigma is still empty, and the
  // same command under no deadline succeeds from scratch.
  EXPECT_NE(Call(&client, "mine customer").find("mined"), std::string::npos);

  server.Shutdown();
  server.Wait();
}

TEST(ServerCancelTest, CancelFrameStopsAnInFlightMine) {
  SemandaqService service;
  TcpServer server(&service);
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(Client client,
                       Client::Connect("127.0.0.1", server.port()));
  LoadSlowWorkload(&client);

  // Fire the CANCEL from a second thread while Call blocks on the
  // response — the intended use of SendCancel (write-side only; the
  // blocked reader owns the read side).
  std::thread canceller([&client] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    EXPECT_OK(client.SendCancel());
  });
  const auto start = Clock::now();
  ASSERT_OK_AND_ASSIGN(WireResponse resp, client.Call("mine customer"));
  canceller.join();
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.status, WireStatus::kCancelled);
  EXPECT_LT(MsSince(start), 2000);
  EXPECT_TRUE(AwaitCounter(service.stats().cancels, 1));

  // The connection stays healthy after a cancelled request.
  EXPECT_NE(Call(&client, "ls").find("customer"), std::string::npos);

  server.Shutdown();
  server.Wait();
}

TEST(ServerCancelTest, DeadSocketMidMineCancelsTheEngineWork) {
  SemandaqService service;
  TcpServer server(&service);
  ASSERT_OK(server.Start());
  {
    ASSERT_OK_AND_ASSIGN(Client loader,
                         Client::Connect("127.0.0.1", server.port()));
    LoadSlowWorkload(&loader);
  }

  // A raw peer: one request frame out, then gone without reading the
  // response.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  ASSERT_OK(WriteFrame(fd, "mine customer"));
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  // Vanish mid-request. The watchdog notices the dead fd and cancels the
  // mine instead of letting it run to completion for nobody.
  ::close(fd);
  EXPECT_TRUE(AwaitCounter(service.stats().cancels, 1));

  server.Shutdown();
  server.Wait();
}

TEST(ServerCancelTest, AdmissionShedsWithARetryHintThatWorks) {
  ServiceOptions options;
  options.scheduler_lanes = 2;
  options.admission.enabled = true;
  options.admission.max_expensive = 1;
  options.admission.queue_limit_expensive = 0;  // overflow sheds at once
  options.admission.retry_after_ms = 25;
  SemandaqService service(options);
  TcpServer server(&service);
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(Client loader,
                       Client::Connect("127.0.0.1", server.port()));
  LoadSlowWorkload(&loader);

  // Occupy the one expensive slot...
  std::thread miner([&server] {
    auto client = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    auto resp = client->Call("mine customer");
    EXPECT_TRUE(resp.ok()) << resp.status().ToString();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // ...so the competing mine is shed with a machine-readable hint.
  ASSERT_OK_AND_ASSIGN(Client rival,
                       Client::Connect("127.0.0.1", server.port()));
  ASSERT_OK_AND_ASSIGN(WireResponse busy, rival.Call("mine customer"));
  EXPECT_FALSE(busy.ok);
  EXPECT_EQ(busy.status, WireStatus::kBusy);
  EXPECT_GE(busy.retry_after_ms, 25u);
  EXPECT_GE(service.stats().sheds.load(std::memory_order_relaxed), 1u);

  // Cheap verbs sail past the congested expensive class — the whole point
  // of classed admission.
  EXPECT_NE(Call(&rival, "ls").find("customer"), std::string::npos);

  // The retrying client honors the hint and lands once the slot frees.
  ClientOptions retrying;
  retrying.max_retries = 50;
  ASSERT_OK_AND_ASSIGN(
      Client patient,
      Client::Connect("127.0.0.1", server.port(), retrying));
  ASSERT_OK_AND_ASSIGN(WireResponse mined,
                       patient.CallIdempotent("mine customer"));
  EXPECT_TRUE(mined.ok) << mined.text;
  miner.join();

  // The stats surface reports the episode.
  const std::string stats = Call(&rival, "stats");
  EXPECT_NE(stats.find("admission.enabled=1"), std::string::npos);
  EXPECT_NE(stats.find("sheds="), std::string::npos);
  EXPECT_NE(stats.find("lanes.total=2"), std::string::npos);

  server.Shutdown();
  server.Wait();
}

TEST(ServerCancelTest, StatsCommandIsMachineParseable) {
  SemandaqService service;
  TcpServer server(&service);
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(Client client,
                       Client::Connect("127.0.0.1", server.port()));
  const std::string stats = Call(&client, "stats");
  for (const char* key :
       {"lanes.total=", "lanes.free=", "admission.enabled=", "cheap.active=",
        "cheap.queued=", "expensive.active=", "expensive.queued=", "sheds=",
        "timeouts=", "cancels=", "epochs_served="}) {
    EXPECT_NE(stats.find(key), std::string::npos) << "missing " << key;
  }
  server.Shutdown();
  server.Wait();
}

}  // namespace
}  // namespace semandaq::server
